//! The daily crawl orchestrator (§4.1.2).
//!
//! Each day, for every monitored term, the crawler pulls the top-k SERP,
//! records per-result observations (rank, root-ness, hacked label), and
//! resolves each result domain's cloaking status:
//!
//! * **new domains** run the full detection stack — Dagger first, VanGogh
//!   (rendering, ≤3 pages/domain) when Dagger stays quiet;
//! * **known-clean domains are skipped** — the paper's churn trim ("we do
//!   not crawl domains previously seen and not detected as poisoned",
//!   viable because daily churn is only ~1.84%);
//! * **known-poisoned domains** get a cheap landing re-verification every
//!   few days, which is how landing rotations and seizure notices surface.
//!
//! Store detection and seizure parsing run on landing pages as they are
//! (re)resolved.
//!
//! # Parallelism and determinism
//!
//! A crawl day is a map/reduce over verticals. The **map** phase is pure:
//! each vertical worker sees only `&World` (the read-only fetch plane)
//! plus an immutable [`DbSnapshot`] of yesterday's knowledge, and emits a
//! [`CrawlEvent`] log. Workers never touch the database, so any number of
//! them can run concurrently on scoped threads. The **reduce** phase
//! replays the event logs into [`CrawlDb`] strictly in vertical-index
//! order on the calling thread — which is where all interning and
//! mutation happens. Because worker output depends only on
//! `(world, snapshot, vertical, day)` and the reduce order is fixed, the
//! database is bit-identical at any thread count, including one.
//!
//! # Telemetry
//!
//! Workers record per-vertical counters (fetches, detections, PSR hits,
//! store visits) into a private [`ss_obs::Registry`] carried alongside
//! the event log, and the reduce merges those registries into the
//! caller's registry strictly in vertical order — the same replay rule
//! the database follows, so instrumented runs stay bit-identical at any
//! thread count (counter/histogram merging is integer addition and
//! order-insensitive besides).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ss_obs::{FlightRecorder, Registry, TraceLevel};
use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use ss_types::{SimDate, Url};
use ss_web::http::{Fetcher, Request, UserAgent};
use ss_web::js::{JsCache, JsEngine};

use ss_eco::World;

use crate::dagger::{self, CloakSignal};
use crate::db::{CrawlDb, DailyCount, DomainInfo, PsrRecord, StoreInfo};
use crate::stores::{self, SeizureNotice};
use crate::terms::{query_by_text, MonitoredVertical, TermMethodology};
use crate::vangogh;

/// Crawler configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlerConfig {
    /// SERP depth to crawl daily (paper: 100).
    pub serp_depth: usize,
    /// Maximum pages rendered per doorway domain (paper: 3).
    pub render_sample: u8,
    /// Days between landing re-verifications of known-poisoned domains.
    pub reverify_days: u32,
    /// Maximum redirect hops to follow.
    pub max_hops: usize,
    /// Worker threads for the per-vertical map phase. The database is
    /// bit-identical at any value; 1 runs the map inline.
    pub threads: usize,
    /// Flight-recorder level for PSR provenance events. Off by default;
    /// enabling it changes no counter, histogram, or database byte.
    pub trace: TraceLevel,
    /// Which JS engine renders pages (VanGogh and Dagger's JS-redirect
    /// upgrade). The bytecode VM by default; the treewalker is kept for
    /// differential runs. The crawl database is byte-identical either way.
    pub js_engine: JsEngine,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            serp_depth: 100,
            render_sample: 3,
            reverify_days: 3,
            max_hops: 6,
            threads: 1,
            trace: TraceLevel::Off,
            js_engine: JsEngine::default(),
        }
    }
}

/// Ring capacity of the crawler's merged flight recorder.
const CRAWL_TRACE_CAP: usize = 1 << 16;

/// What a vertical worker knows about one poisoned doorway, frozen at the
/// start of the day. Name-keyed: workers never see interned ids.
#[derive(Debug, Clone)]
struct PoisonSnap {
    signal: CloakSignal,
    last_verified: SimDate,
}

/// Immutable start-of-day view of the crawler's accumulated knowledge,
/// shared read-only by every vertical worker.
#[derive(Debug, Default)]
struct DbSnapshot {
    /// Known-poisoned doorways by domain name.
    poisoned: HashMap<String, PoisonSnap>,
    /// Domain names checked and found clean.
    clean: HashSet<String>,
}

/// What a vertical worker saw when it visited a landing (store) page.
#[derive(Debug, Clone)]
enum StoreObservation {
    /// The page was a seizure notice.
    Notice(SeizureNotice),
    /// A live page: store-detection verdict plus captured evidence.
    Page {
        is_store: bool,
        html: String,
        cookie_names: Vec<String>,
    },
}

/// One entry in a vertical worker's output log. Replaying a day's logs in
/// vertical order reproduces exactly the mutations the sequential crawler
/// performed; every field is a plain string or value so the map phase
/// never touches the interner.
#[derive(Debug, Clone)]
enum CrawlEvent {
    /// A known-poisoned domain appeared in a SERP again.
    Seen { domain: String },
    /// Detection ran on a new domain and found it clean.
    Clean { domain: String },
    /// Detection ran on a new domain and confirmed cloaking.
    Detected {
        domain: String,
        signal: CloakSignal,
        landing: Option<String>,
    },
    /// A known-poisoned doorway's landing was re-resolved.
    Reverified {
        domain: String,
        landing: Option<String>,
    },
    /// Hacked-label state observed for a poisoned domain.
    Label { domain: String, labeled: bool },
    /// A poisoned search result to record.
    Psr {
        term: String,
        rank: u8,
        domain: String,
        is_root: bool,
        labeled: bool,
    },
    /// A landing page was fetched and parsed.
    StoreVisit {
        domain: String,
        outcome: StoreObservation,
    },
}

/// A vertical worker's complete output for one day: the event log, the
/// SERP tallies, the worker's private metric registry, and its private
/// (unbounded) flight recorder.
struct VerticalLog {
    count: DailyCount,
    events: Vec<CrawlEvent>,
    metrics: Registry,
    trace: FlightRecorder,
}

/// The crawler: monitored terms plus accumulated database.
pub struct Crawler {
    /// Configuration.
    pub cfg: CrawlerConfig,
    /// Monitored verticals with their term lists.
    pub monitored: Vec<MonitoredVertical>,
    /// The accumulated crawl database.
    pub db: CrawlDb,
    /// PSR provenance flight recorder: per-vertical worker recorders
    /// folded in vertical order (the same replay rule the database
    /// follows), so its contents are bit-identical at any thread count.
    pub recorder: FlightRecorder,
    /// Domains checked and found clean (skipped until they disappear —
    /// the churn trim).
    clean: HashSet<u32>,
    /// Per-run JS compile cache shared by all vertical workers. Scripts
    /// are generated per page *template*, so a whole crawl compiles a
    /// handful of chunks and replays them for every render.
    js_cache: JsCache,
}

impl Crawler {
    /// Creates a crawler over a monitored term set.
    pub fn new(cfg: CrawlerConfig, monitored: Vec<MonitoredVertical>) -> Self {
        let recorder = FlightRecorder::new(cfg.trace, CRAWL_TRACE_CAP);
        Crawler {
            cfg,
            monitored,
            db: CrawlDb::new(),
            recorder,
            clean: HashSet::new(),
            js_cache: JsCache::new(),
        }
    }

    /// `(compiles, cache hits)` of this crawler's JS compile cache so far.
    pub fn js_cache_stats(&self) -> (u64, u64) {
        self.js_cache.stats()
    }

    /// Domains checked and found clean (for methodology validation).
    pub fn known_clean(&self) -> impl Iterator<Item = &u32> {
        self.clean.iter()
    }

    /// Crawls one day across all monitored verticals: snapshot, map
    /// (possibly threaded), then an ordered reduce. The world is only
    /// read — crawling never perturbs the ecosystem it measures.
    /// Telemetry is discarded; use [`Crawler::crawl_day_metered`] to keep it.
    pub fn crawl_day(&mut self, world: &World, day: SimDate) {
        self.crawl_day_metered(world, day, &Registry::new());
    }

    /// [`Crawler::crawl_day`], recording crawl telemetry into `obs`:
    /// per-vertical fetch/detection/PSR counters and rank histograms,
    /// aggregated from per-worker registries merged in vertical order.
    pub fn crawl_day_metered(&mut self, world: &World, day: SimDate, obs: &Registry) {
        let _span = obs.span("crawl.day");
        let (compiles_before, hits_before) = self.js_cache.stats();
        let snap = self.snapshot();
        let n = self.monitored.len();
        let logs = if self.cfg.threads <= 1 || n <= 1 {
            (0..n)
                .map(|vi| {
                    crawl_vertical(
                        world,
                        &self.cfg,
                        &snap,
                        &self.monitored[vi],
                        vi,
                        day,
                        &self.js_cache,
                    )
                })
                .collect()
        } else {
            self.map_parallel(world, &snap, day)
        };
        for (vi, log) in logs.into_iter().enumerate() {
            self.apply_log(day, vi as u16, log, obs);
        }
        // Per-day compile/hit deltas. Compiles happen under the cache lock,
        // so both totals are sums over the day's work items — independent
        // of thread count and interleaving, like every other counter here.
        // Which *phase* takes a given compile is a thread race (Dagger and
        // VanGogh share the cache), so compile work is charged here, at
        // the day choke point, onto a fixed row rather than via the
        // scope stack; the cache pauses the allocation meter for the same
        // reason.
        if self.cfg.js_engine == JsEngine::Vm {
            let (compiles, hits) = self.js_cache.stats();
            obs.count("simweb.js_compile", compiles - compiles_before);
            obs.count("simweb.js_cache_hit", hits - hits_before);
            obs.add_work(
                "crawl/render",
                ss_obs::WorkKind::JsCompiles,
                compiles - compiles_before,
            );
        }
    }

    /// Runs the map phase on `cfg.threads` scoped worker threads pulling
    /// vertical indices from a shared counter. Results land in their
    /// vertical's slot, so scheduling order cannot leak into the output.
    fn map_parallel(&self, world: &World, snap: &DbSnapshot, day: SimDate) -> Vec<VerticalLog> {
        let n = self.monitored.len();
        let cfg = &self.cfg;
        let monitored = &self.monitored;
        let js_cache = &self.js_cache;
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<VerticalLog>>> = Mutex::new((0..n).map(|_| None).collect());
        crossbeam::thread::scope(|s| {
            for _ in 0..cfg.threads.min(n) {
                s.spawn(|_| loop {
                    let vi = next.fetch_add(1, Ordering::Relaxed);
                    if vi >= n {
                        break;
                    }
                    let log = crawl_vertical(world, cfg, snap, &monitored[vi], vi, day, js_cache);
                    slots.lock().expect("no worker panicked holding the lock")[vi] = Some(log);
                });
            }
        })
        .expect("crawl worker panicked");
        slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|slot| slot.expect("every vertical produced a log"))
            .collect()
    }

    /// Freezes the database into the name-keyed view workers read.
    fn snapshot(&self) -> DbSnapshot {
        let mut snap = DbSnapshot::default();
        for (id, info) in &self.db.doorway_info {
            let name = self.db.domains.resolve(*id).to_owned();
            match info.cloak {
                Some(signal) => {
                    snap.poisoned.insert(
                        name,
                        PoisonSnap {
                            signal,
                            last_verified: info.last_verified,
                        },
                    );
                }
                None => {
                    snap.clean.insert(name);
                }
            }
        }
        for id in &self.clean {
            snap.clean.insert(self.db.domains.resolve(*id).to_owned());
        }
        snap
    }

    /// Reduce: replays one vertical's event log into the database (the
    /// only place crawl results touch the interner or the maps) and folds
    /// the worker's metric registry into the caller's — in vertical
    /// order, mirroring the event-replay determinism rule.
    fn apply_log(&mut self, day: SimDate, vertical: u16, log: VerticalLog, obs: &Registry) {
        obs.merge_from(&log.metrics);
        self.recorder.merge_from(&log.trace);
        for event in log.events {
            match event {
                CrawlEvent::Seen { domain } => {
                    let id = self.db.domains.intern(&domain);
                    if let Some(info) = self.db.doorway_info.get_mut(&id) {
                        info.last_seen = day;
                    }
                }
                CrawlEvent::Clean { domain } => {
                    let id = self.db.domains.intern(&domain);
                    // A domain another vertical already confirmed poisoned
                    // today stays poisoned (positive detections win).
                    if !self.db.doorway_info.contains_key(&id) {
                        self.clean.insert(id);
                    }
                }
                CrawlEvent::Detected {
                    domain,
                    signal,
                    landing,
                } => {
                    let id = self.db.domains.intern(&domain);
                    self.clean.remove(&id);
                    let landing_id = landing.map(|l| self.db.domains.intern(&l));
                    match self.db.doorway_info.get_mut(&id) {
                        // Another vertical detected it earlier today.
                        Some(info) => {
                            info.last_seen = day;
                            if let Some(lid) = landing_id {
                                let changed =
                                    info.landings.last().map(|(_, l)| *l != lid).unwrap_or(true);
                                if changed {
                                    info.landings.push((day, lid));
                                }
                            }
                        }
                        None => {
                            self.db.doorway_info.insert(
                                id,
                                DomainInfo {
                                    first_seen: day,
                                    last_seen: day,
                                    cloak: Some(signal),
                                    landings: landing_id.map(|l| (day, l)).into_iter().collect(),
                                    label_seen: None,
                                    last_unlabeled_before: None,
                                    rendered_pages: 1,
                                    last_verified: day,
                                },
                            );
                        }
                    }
                }
                CrawlEvent::Reverified { domain, landing } => {
                    let id = self.db.domains.intern(&domain);
                    let landing_id = landing.map(|l| self.db.domains.intern(&l));
                    if let Some(info) = self.db.doorway_info.get_mut(&id) {
                        info.last_verified = day;
                        if let Some(lid) = landing_id {
                            let changed =
                                info.landings.last().map(|(_, l)| *l != lid).unwrap_or(true);
                            if changed {
                                info.landings.push((day, lid));
                            }
                        }
                    }
                }
                CrawlEvent::Label { domain, labeled } => {
                    let id = self.db.domains.intern(&domain);
                    self.observe_label(id, day, labeled);
                }
                CrawlEvent::Psr {
                    term,
                    rank,
                    domain,
                    is_root,
                    labeled,
                } => {
                    let term_id = self.db.terms.intern(&term);
                    let domain_id = self.db.domains.intern(&domain);
                    // The landing is read back from the database, after the
                    // Detected/Reverified events preceding this record have
                    // been applied — same read-your-writes order as the
                    // sequential crawler.
                    let landing = self
                        .db
                        .doorway_info
                        .get(&domain_id)
                        .and_then(|i| i.landings.last().map(|(_, l)| *l));
                    self.db.psrs.push(PsrRecord {
                        day,
                        vertical,
                        term: term_id,
                        rank,
                        domain: domain_id,
                        is_root,
                        labeled,
                        landing,
                    });
                }
                CrawlEvent::StoreVisit { domain, outcome } => {
                    let landing_id = self.db.domains.intern(&domain);
                    self.apply_store_visit(day, landing_id, outcome);
                }
            }
        }
        self.db.daily_counts.push(log.count);
    }

    /// Replays one landing-page observation into the store table.
    fn apply_store_visit(&mut self, day: SimDate, landing_id: u32, outcome: StoreObservation) {
        let fresh = || StoreInfo {
            first_seen: day,
            last_seen: day,
            is_store: false,
            html: String::new(),
            cookie_names: Vec::new(),
            seizure: None,
            last_alive_before_seizure: None,
        };
        match outcome {
            StoreObservation::Notice(notice) => {
                let last_alive = self.db.store_info.get(&landing_id).map(|s| s.last_seen);
                let entry = self.db.store_info.entry(landing_id).or_insert_with(fresh);
                if entry.seizure.is_none() {
                    entry.seizure = Some((day, notice));
                    entry.last_alive_before_seizure = last_alive;
                }
            }
            StoreObservation::Page {
                is_store,
                html,
                cookie_names,
            } => {
                let entry = self.db.store_info.entry(landing_id).or_insert_with(fresh);
                entry.last_seen = day;
                if is_store {
                    entry.is_store = true;
                    if entry.html.is_empty() {
                        entry.html = html;
                        entry.cookie_names = cookie_names;
                    }
                }
            }
        }
    }

    /// New-domain fraction among today's results (the paper reports 1.84%
    /// average daily churn) — measured over the most recent crawl day.
    pub fn last_day_churn(&self, day: SimDate) -> f64 {
        let cols = self.db.psrs.columns();
        let seen_today: HashSet<u32> = self.db.psrs.day_rows(day).map(|i| cols.domain[i]).collect();
        if seen_today.is_empty() {
            return 0.0;
        }
        let new = seen_today
            .iter()
            .filter(|d| {
                self.db
                    .doorway_info
                    .get(d)
                    .map(|i| i.first_seen == day)
                    .unwrap_or(false)
            })
            .count();
        new as f64 / seen_today.len() as f64
    }

    /// Records hacked-label state transitions for delay estimation.
    fn observe_label(&mut self, domain_id: u32, day: SimDate, labeled: bool) {
        let Some(info) = self.db.doorway_info.get_mut(&domain_id) else {
            return;
        };
        match (labeled, info.label_seen) {
            (true, None) => info.label_seen = Some((day, day)),
            (true, Some((first, _))) => info.label_seen = Some((first, day)),
            (false, None) => info.last_unlabeled_before = Some(day),
            (false, Some(_)) => {}
        }
    }
}

/// The pure map phase for one vertical: crawl every monitored term's SERP
/// against `&World`, deciding each domain from the frozen snapshot plus a
/// thread-local overlay of this day's own discoveries. Counters land in
/// the log's private registry, labeled with the vertical name.
fn crawl_vertical(
    world: &World,
    cfg: &CrawlerConfig,
    snap: &DbSnapshot,
    mv: &MonitoredVertical,
    vi: usize,
    day: SimDate,
    js_cache: &JsCache,
) -> VerticalLog {
    let vertical = mv.name.as_str();
    let metrics = Registry::new();
    // Per-work-item recorder: unbounded here, bounded at the merge point,
    // so eviction happens once in a single deterministic stream.
    let trace = FlightRecorder::unbounded(cfg.trace);
    // This vertical's same-day discoveries, layered over the snapshot so a
    // domain appearing under several terms is only detected once — the
    // same memoization the sequential crawler got from its database.
    let mut local_poisoned: HashMap<String, PoisonSnap> = HashMap::new();
    let mut local_clean: HashSet<String> = HashSet::new();

    let mut count = DailyCount {
        day,
        vertical: vi as u16,
        top10_seen: 0,
        top10_poisoned: 0,
        total_seen: 0,
        total_poisoned: 0,
    };
    let mut events: Vec<CrawlEvent> = Vec::new();

    for term in &mv.terms {
        let Some(results) = query_by_text(world, term, day, cfg.serp_depth) else {
            continue;
        };
        ss_obs::count!(metrics, "crawl.serp_queries", 1, vertical = vertical);
        ss_obs::observe!(metrics, "crawl.serp_results", results.len());
        for (rank, url, labeled) in results {
            count.total_seen += 1;
            if rank <= 10 {
                count.top10_seen += 1;
            }
            let name = url.host.as_str();

            let known = local_poisoned
                .get(name)
                .or_else(|| snap.poisoned.get(name))
                .cloned();
            let poisoned = if let Some(info) = known {
                events.push(CrawlEvent::Seen {
                    domain: name.to_owned(),
                });
                // Known poisoned: periodic cheap landing re-verification.
                if day.days_since(info.last_verified) >= i64::from(cfg.reverify_days) {
                    ss_obs::count!(metrics, "crawl.fetches", 1, vertical = vertical);
                    ss_obs::count!(metrics, "crawl.reverifies", 1, vertical = vertical);
                    let verdict = match info.signal {
                        CloakSignal::Iframe => vangogh::check_with(
                            world,
                            &url,
                            term,
                            cfg.max_hops,
                            cfg.js_engine,
                            js_cache,
                            &metrics,
                        ),
                        _ => dagger::check_with(
                            world,
                            &url,
                            term,
                            cfg.max_hops,
                            cfg.js_engine,
                            js_cache,
                            &metrics,
                        ),
                    };
                    local_poisoned.insert(
                        name.to_owned(),
                        PoisonSnap {
                            signal: info.signal,
                            last_verified: day,
                        },
                    );
                    let landing = verdict.landing;
                    events.push(CrawlEvent::Reverified {
                        domain: name.to_owned(),
                        landing: landing.as_ref().map(|l| l.host.as_str().to_owned()),
                    });
                    if let Some(landing) = landing {
                        events.push(visit_store(world, &landing, &metrics, vertical));
                    }
                }
                true
            } else if local_clean.contains(name) || snap.clean.contains(name) {
                false // churn trim: known clean
            } else {
                // First sighting: run the detection stack — Dagger, then a
                // rendering pass within the per-domain budget.
                ss_obs::count!(metrics, "crawl.fetches", 2, vertical = vertical);
                ss_obs::count!(metrics, "crawl.detector_runs", 1, vertical = vertical);
                let mut verdict = dagger::check_with(
                    world,
                    &url,
                    term,
                    cfg.max_hops,
                    cfg.js_engine,
                    js_cache,
                    &metrics,
                );
                if verdict.cloaked.is_none() && cfg.render_sample > 0 {
                    ss_obs::count!(metrics, "crawl.fetches", 1, vertical = vertical);
                    ss_obs::count!(metrics, "crawl.render_passes", 1, vertical = vertical);
                    verdict = vangogh::check_with(
                        world,
                        &url,
                        term,
                        cfg.max_hops,
                        cfg.js_engine,
                        js_cache,
                        &metrics,
                    );
                }
                match verdict.cloaked {
                    None => {
                        ss_obs::count!(metrics, "crawl.clean_verdicts", 1, vertical = vertical);
                        local_clean.insert(name.to_owned());
                        events.push(CrawlEvent::Clean {
                            domain: name.to_owned(),
                        });
                        false
                    }
                    Some(signal) => {
                        ss_obs::count!(metrics, "crawl.cloak_detections", 1, vertical = vertical);
                        ss_obs::trace!(
                            trace,
                            day.day_index(),
                            "crawl.detect",
                            rank,
                            "detected {name} vertical={vertical} signal={signal:?} landing={:?}",
                            verdict.landing.as_ref().map(|l| l.host.as_str())
                        );
                        local_poisoned.insert(
                            name.to_owned(),
                            PoisonSnap {
                                signal,
                                last_verified: day,
                            },
                        );
                        let landing = verdict.landing;
                        events.push(CrawlEvent::Detected {
                            domain: name.to_owned(),
                            signal,
                            landing: landing.as_ref().map(|l| l.host.as_str().to_owned()),
                        });
                        if let Some(landing) = landing {
                            events.push(visit_store(world, &landing, &metrics, vertical));
                        }
                        true
                    }
                }
            };

            if poisoned {
                let _psr_log = metrics.cost_scope("crawl/psr_log");
                ss_obs::count!(metrics, "crawl.psrs", 1, vertical = vertical);
                ss_obs::observe!(metrics, "crawl.psr_rank", rank);
                count.total_poisoned += 1;
                if rank <= 10 {
                    count.top10_poisoned += 1;
                }
                events.push(CrawlEvent::Label {
                    domain: name.to_owned(),
                    labeled,
                });
                ss_obs::trace!(
                    trace,
                    day.day_index(),
                    "crawl.psr",
                    rank,
                    "psr {name} vertical={vertical} term={term:?} rank={rank} labeled={labeled}"
                );
                events.push(CrawlEvent::Psr {
                    term: term.clone(),
                    rank: rank.min(255) as u8,
                    domain: name.to_owned(),
                    is_root: url.is_root_page(),
                    labeled,
                });
            }
        }
    }
    if trace.enabled() {
        trace.record(
            day.day_index(),
            "crawl.vertical",
            vi as u64,
            format!(
                "vertical={vertical} psrs={} serp_rows={}",
                count.total_poisoned, count.total_seen
            ),
        );
    }
    VerticalLog {
        count,
        events,
        metrics,
        trace,
    }
}

/// Visits a landing (store) domain read-only: store detection, HTML
/// capture, seizure observation — packaged as an event for the reduce.
fn visit_store(world: &World, landing: &Url, metrics: &Registry, vertical: &str) -> CrawlEvent {
    ss_obs::count!(metrics, "crawl.fetches", 1, vertical = vertical);
    ss_obs::count!(metrics, "crawl.store_visits", 1, vertical = vertical);
    let root = Url::root(landing.host.clone());
    let (resp, _) = {
        let _fetch = metrics.cost_scope("crawl/fetch");
        ss_obs::charge(ss_obs::WorkKind::DocsFetched, 1);
        world.fetch(&Request {
            url: root,
            user_agent: UserAgent::Browser,
            referrer: Some(dagger::google_referrer("landing")),
        })
    };
    let domain = landing.host.as_str().to_owned();
    let notice = {
        let _detect = metrics.cost_scope("crawl/detect");
        stores::parse_seizure_notice(&resp.body)
    };
    if let Some(notice) = notice {
        ss_obs::count!(metrics, "crawl.seizure_notices", 1, vertical = vertical);
        return CrawlEvent::StoreVisit {
            domain,
            outcome: StoreObservation::Notice(notice),
        };
    }
    let verdict = {
        let _detect = metrics.cost_scope("crawl/detect");
        stores::detect_store(&resp.body, &resp.cookies)
    };
    CrawlEvent::StoreVisit {
        domain,
        outcome: StoreObservation::Page {
            is_store: verdict.is_store(),
            html: resp.body,
            cookie_names: resp.cookies.into_iter().map(|c| c.name).collect(),
        },
    }
}

impl Snapshot for Crawler {
    const TAG: &'static str = "crawler";
    const VERSION: u16 = 1;

    /// Captures everything a resumed crawl reads: config, the monitored
    /// term lists (fixed at crawl start in the study, so they must survive
    /// a checkpoint rather than be re-derived from a later world), the
    /// database, the provenance recorder, the churn-trim clean set, and
    /// the JS cache with its per-run counters.
    fn write_body(&self, w: &mut Writer) {
        w.put_u64(self.cfg.serp_depth as u64);
        w.put_u8(self.cfg.render_sample);
        w.put_u32(self.cfg.reverify_days);
        w.put_u64(self.cfg.max_hops as u64);
        w.put_u64(self.cfg.threads as u64);
        w.put_u8(match self.cfg.trace {
            TraceLevel::Off => 0,
            TraceLevel::Stage => 1,
            TraceLevel::Event => 2,
        });
        w.put_u8(match self.cfg.js_engine {
            JsEngine::TreeWalk => 0,
            JsEngine::Vm => 1,
        });
        w.put_seq(&self.monitored, |w, m| {
            w.put_str(&m.name);
            w.put_u8(match m.methodology {
                TermMethodology::DoorwayExtraction => 0,
                TermMethodology::SuggestExpansion => 1,
            });
            w.put_seq(&m.terms, |w, t| w.put_str(t));
        });
        w.put_nested(&self.db);
        w.put_nested(&self.recorder);
        let mut clean: Vec<u32> = self.clean.iter().copied().collect();
        clean.sort_unstable();
        w.put_seq(&clean, |w, id| w.put_u32(*id));
        w.put_nested(&self.js_cache);
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let cfg = CrawlerConfig {
            serp_depth: r.get_u64()? as usize,
            render_sample: r.get_u8()?,
            reverify_days: r.get_u32()?,
            max_hops: r.get_u64()? as usize,
            threads: r.get_u64()? as usize,
            trace: match r.get_u8()? {
                0 => TraceLevel::Off,
                1 => TraceLevel::Stage,
                2 => TraceLevel::Event,
                b => return Err(SnapshotError::Corrupt(format!("trace level byte {b}"))),
            },
            js_engine: match r.get_u8()? {
                0 => JsEngine::TreeWalk,
                1 => JsEngine::Vm,
                b => return Err(SnapshotError::Corrupt(format!("js engine byte {b}"))),
            },
        };
        let monitored = r.get_seq(|r| {
            Ok(MonitoredVertical {
                name: r.get_str()?,
                methodology: match r.get_u8()? {
                    0 => TermMethodology::DoorwayExtraction,
                    1 => TermMethodology::SuggestExpansion,
                    b => {
                        return Err(SnapshotError::Corrupt(format!("methodology byte {b}")));
                    }
                },
                terms: r.get_seq(|r| r.get_str())?,
            })
        })?;
        let db = r.get_nested()?;
        let recorder = r.get_nested()?;
        let clean: HashSet<u32> = r.get_seq(|r| r.get_u32())?.into_iter().collect();
        let js_cache = r.get_nested()?;
        Ok(Crawler {
            cfg,
            monitored,
            db,
            recorder,
            clean,
            js_cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms;
    use ss_eco::ScenarioConfig;

    fn crawl_world_engine(
        days: u32,
        threads: usize,
        js_engine: JsEngine,
    ) -> (World, Crawler, Registry) {
        let mut w = World::build(ScenarioConfig::tiny(23)).unwrap();
        let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
        w.run_until(start);
        let monitored = terms::select_all(&w, start, 6, 5);
        let mut crawler = Crawler::new(
            CrawlerConfig {
                serp_depth: 30,
                threads,
                trace: TraceLevel::Event,
                js_engine,
                ..CrawlerConfig::default()
            },
            monitored,
        );
        let obs = Registry::new();
        for d in 0..days {
            let day = start + 1 + d;
            w.run_until(day);
            crawler.crawl_day_metered(&w, day, &obs);
        }
        (w, crawler, obs)
    }

    fn crawl_world_threaded(days: u32, threads: usize) -> (World, Crawler, Registry) {
        crawl_world_engine(days, threads, JsEngine::default())
    }

    fn crawl_world(days: u32) -> (World, Crawler) {
        let (w, crawler, _) = crawl_world_threaded(days, 1);
        (w, crawler)
    }

    #[test]
    fn crawl_accumulates_psrs_and_counts() {
        let (_w, crawler) = crawl_world(6);
        assert!(!crawler.db.psrs.is_empty(), "no PSRs found");
        assert!(!crawler.db.daily_counts.is_empty());
        let poisoned = crawler.db.poisoned_domains().count();
        assert!(poisoned > 0);
        // Every PSR's rank is within the crawled depth.
        assert!(crawler.db.psrs.iter().all(|p| (1..=30).contains(&p.rank)));
    }

    #[test]
    fn detected_domains_are_really_doorways() {
        // Methodology validation in miniature: zero false positives
        // against ground truth (§4.1.3 found none either).
        let (w, crawler) = crawl_world(5);
        for (id, _) in crawler.db.poisoned_domains() {
            let name = crawler.db.domains.resolve(*id);
            let domain = w
                .domains
                .lookup(&ss_types::DomainName::parse(name).unwrap())
                .unwrap();
            assert!(
                w.doorway_truth(domain).is_some(),
                "crawler flagged non-doorway {name}"
            );
        }
    }

    #[test]
    fn stores_are_detected_behind_doorways() {
        let (w, crawler) = crawl_world(6);
        let stores: Vec<&u32> = crawler.db.detected_stores().map(|(id, _)| id).collect();
        assert!(!stores.is_empty(), "no stores detected");
        for id in stores {
            let name = crawler.db.domains.resolve(*id);
            let domain = w
                .domains
                .lookup(&ss_types::DomainName::parse(name).unwrap())
                .unwrap();
            let kind = &w.domains.get(domain).kind;
            assert!(
                matches!(kind, ss_eco::domains::SiteKind::Storefront { .. }),
                "{name} flagged as store but is {kind:?}"
            );
        }
        // Store HTML was captured for the classifier.
        assert!(crawler
            .db
            .detected_stores()
            .all(|(_, s)| !s.html.is_empty()));
    }

    #[test]
    fn snapshot_roundtrip_resumes_the_crawl_bit_identically() {
        // Crawl 4 days, checkpoint, then crawl 3 more on both the original
        // and the restored crawler against the same world: databases,
        // clean sets, cache counters, and recorder contents must match.
        let mut w = World::build(ScenarioConfig::tiny(23)).unwrap();
        let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
        w.run_until(start);
        let monitored = terms::select_all(&w, start, 6, 5);
        let mut a = Crawler::new(
            CrawlerConfig {
                serp_depth: 30,
                trace: TraceLevel::Event,
                ..CrawlerConfig::default()
            },
            monitored,
        );
        for d in 0..4 {
            let day = start + 1 + d;
            w.run_until(day);
            a.crawl_day(&w, day);
        }
        let mut b = Crawler::decode(&a.encode()).unwrap();
        assert_eq!(b.cfg, a.cfg);
        assert_eq!(b.db.psrs, a.db.psrs);
        assert_eq!(b.db.psrs.state_fingerprint(), a.db.psrs.state_fingerprint());
        assert_eq!(b.clean, a.clean);
        assert_eq!(b.js_cache.stats(), a.js_cache.stats());
        assert_eq!(b.recorder.render(), a.recorder.render());
        for d in 4..7 {
            let day = start + 1 + d;
            w.run_until(day);
            a.crawl_day(&w, day);
            b.crawl_day(&w, day);
        }
        assert_eq!(b.db.psrs, a.db.psrs);
        assert_eq!(b.db.daily_counts, a.db.daily_counts);
        assert_eq!(b.clean, a.clean);
        assert_eq!(b.js_cache.stats(), a.js_cache.stats());
        assert_eq!(b.recorder.render(), a.recorder.render());
        assert_eq!(b.encode(), a.encode());
    }

    #[test]
    fn churn_trim_skips_known_clean_domains() {
        let (_w, crawler) = crawl_world(4);
        assert!(!crawler.clean.is_empty(), "no clean domains cached");
        // Clean domains never appear among poisoned.
        for id in &crawler.clean {
            assert!(!crawler.db.doorway_info.contains_key(id));
        }
    }

    #[test]
    fn churn_rate_is_low_after_warmup() {
        let (_w, crawler) = crawl_world(8);
        let last = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 8);
        let churn = crawler.last_day_churn(last);
        assert!(churn < 0.5, "churn {churn} implausibly high after warmup");
    }

    /// The tentpole determinism guarantee at the crawler level: the entire
    /// database — PSR stream, doorway table, store table, daily counts,
    /// and both interners — is bit-identical at any thread count.
    #[test]
    fn crawl_is_bit_identical_across_thread_counts() {
        let (_w1, serial, serial_obs) = crawl_world_threaded(5, 1);
        for threads in [2, 8] {
            let (_w, parallel, parallel_obs) = crawl_world_threaded(5, threads);
            // Telemetry follows the same replay rule as the database:
            // per-worker registries merged in vertical order, so the
            // deterministic half renders byte-identically.
            assert_eq!(
                serial_obs.metrics_json(),
                parallel_obs.metrics_json(),
                "{threads} threads: merged metric registries differ"
            );
            assert_eq!(
                serial.db.psrs, parallel.db.psrs,
                "{threads} threads: PSRs differ"
            );
            assert_eq!(
                serial.db.daily_counts, parallel.db.daily_counts,
                "{threads} threads: daily counts differ"
            );
            assert_eq!(
                serial.db.domains.len(),
                parallel.db.domains.len(),
                "{threads} threads: interner sizes differ"
            );
            for id in 0..serial.db.domains.len() as u32 {
                assert_eq!(
                    serial.db.domains.resolve(id),
                    parallel.db.domains.resolve(id)
                );
            }
            assert_eq!(serial.db.doorway_info.len(), parallel.db.doorway_info.len());
            for (id, info) in &serial.db.doorway_info {
                let other = &parallel.db.doorway_info[id];
                assert_eq!(info.cloak, other.cloak);
                assert_eq!(info.landings, other.landings);
                assert_eq!(info.first_seen, other.first_seen);
                assert_eq!(info.last_verified, other.last_verified);
            }
            assert_eq!(serial.db.store_info.len(), parallel.db.store_info.len());
            for (id, info) in &serial.db.store_info {
                let other = &parallel.db.store_info[id];
                assert_eq!(info.is_store, other.is_store);
                assert_eq!(info.html, other.html);
                assert_eq!(info.seizure.is_some(), other.seizure.is_some());
            }
            assert_eq!(
                serial.clean, parallel.clean,
                "{threads} threads: clean sets differ"
            );
            // The flight recorder is part of the deterministic half:
            // worker recorders merged in vertical order re-stamp their
            // sequence numbers, so the rendered stream is byte-identical.
            assert!(!serial.recorder.is_empty(), "recorder captured nothing");
            assert_eq!(
                serial.recorder.render(),
                parallel.recorder.render(),
                "{threads} threads: flight recorders differ"
            );
        }
    }

    /// The crawl records a meaningful per-vertical metric surface: fetch,
    /// detection, and PSR counters plus the rank histogram, all labeled.
    #[test]
    fn crawl_metrics_cover_fetches_detections_and_psrs() {
        let (_w, crawler, obs) = crawl_world_threaded(5, 2);
        assert!(obs.counter_total("crawl.serp_queries") > 0);
        assert!(obs.counter_total("crawl.fetches") > 0);
        assert!(obs.counter_total("crawl.cloak_detections") > 0);
        assert_eq!(
            obs.counter_total("crawl.psrs"),
            crawler.db.psrs.len() as u64
        );
        let ranks = obs
            .histogram("crawl.psr_rank")
            .expect("rank histogram recorded");
        assert_eq!(ranks.count(), crawler.db.psrs.len() as u64);
        assert!(
            ranks.max().unwrap_or(0) <= 30,
            "ranks bounded by crawl depth"
        );
        // Labels carry the vertical name.
        assert!(obs
            .metric_names()
            .iter()
            .any(|n| n.starts_with("crawl.psrs{vertical=")));
    }

    /// The VM compile cache works at crawl scale: pages are generated from
    /// a handful of templates, so compiles stay tiny while hits track the
    /// render volume — and both surface as counters in the registry.
    #[test]
    fn js_compile_cache_counters_recorded_under_vm() {
        let (_w, crawler, obs) = crawl_world_threaded(5, 2);
        let (compiles, hits) = crawler.js_cache_stats();
        assert!(compiles > 0, "rendering crawls must compile some scripts");
        assert!(
            hits > compiles,
            "template reuse should make hits ({hits}) dominate compiles ({compiles})"
        );
        assert_eq!(obs.counter_total("simweb.js_compile"), compiles);
        assert_eq!(obs.counter_total("simweb.js_cache_hit"), hits);
    }

    /// The treewalker records no compile-cache counters (it has no cache),
    /// keeping the metric surface honest for engine-comparison studies.
    #[test]
    fn treewalk_records_no_js_cache_counters() {
        let (_w, crawler, obs) = crawl_world_engine(3, 1, JsEngine::TreeWalk);
        assert_eq!(crawler.js_cache_stats(), (0, 0));
        assert_eq!(obs.counter_total("simweb.js_compile"), 0);
        assert_eq!(obs.counter_total("simweb.js_cache_hit"), 0);
    }

    /// The differential guarantee at the crawl level: both engines produce
    /// byte-identical crawl databases (verdicts, landings, PSRs, captured
    /// store HTML) — only performance may differ.
    #[test]
    fn engines_produce_identical_crawl_databases() {
        let (_w1, tw, _) = crawl_world_engine(5, 1, JsEngine::TreeWalk);
        let (_w2, vm, _) = crawl_world_engine(5, 2, JsEngine::Vm);
        assert_eq!(tw.db.psrs, vm.db.psrs, "PSR streams differ");
        assert_eq!(tw.db.daily_counts, vm.db.daily_counts);
        assert_eq!(tw.clean, vm.clean, "clean sets differ");
        assert_eq!(tw.db.doorway_info.len(), vm.db.doorway_info.len());
        for (id, info) in &tw.db.doorway_info {
            let other = &vm.db.doorway_info[id];
            assert_eq!(info.cloak, other.cloak, "cloak verdicts differ");
            assert_eq!(info.landings, other.landings, "landings differ");
        }
        assert_eq!(tw.db.store_info.len(), vm.db.store_info.len());
        for (id, info) in &tw.db.store_info {
            let other = &vm.db.store_info[id];
            assert_eq!(info.is_store, other.is_store);
            assert_eq!(info.html, other.html);
        }
    }
}

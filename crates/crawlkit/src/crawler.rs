//! The daily crawl orchestrator (§4.1.2).
//!
//! Each day, for every monitored term, the crawler pulls the top-k SERP,
//! records per-result observations (rank, root-ness, hacked label), and
//! resolves each result domain's cloaking status:
//!
//! * **new domains** run the full detection stack — Dagger first, VanGogh
//!   (rendering, ≤3 pages/domain) when Dagger stays quiet;
//! * **known-clean domains are skipped** — the paper's churn trim ("we do
//!   not crawl domains previously seen and not detected as poisoned",
//!   viable because daily churn is only ~1.84%);
//! * **known-poisoned domains** get a cheap landing re-verification every
//!   few days, which is how landing rotations and seizure notices surface.
//!
//! Store detection and seizure parsing run on landing pages as they are
//! (re)resolved.

use std::collections::HashSet;

use ss_types::{SimDate, Url};
use ss_web::http::{Request, UserAgent, Web};

use ss_eco::World;

use crate::dagger::{self, CloakSignal};
use crate::db::{CrawlDb, DailyCount, DomainInfo, PsrRecord, StoreInfo};
use crate::stores;
use crate::terms::{query_by_text, MonitoredVertical};
use crate::vangogh;

/// Crawler configuration.
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// SERP depth to crawl daily (paper: 100).
    pub serp_depth: usize,
    /// Maximum pages rendered per doorway domain (paper: 3).
    pub render_sample: u8,
    /// Days between landing re-verifications of known-poisoned domains.
    pub reverify_days: u32,
    /// Maximum redirect hops to follow.
    pub max_hops: usize,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig { serp_depth: 100, render_sample: 3, reverify_days: 3, max_hops: 6 }
    }
}

/// The crawler: monitored terms plus accumulated database.
pub struct Crawler {
    /// Configuration.
    pub cfg: CrawlerConfig,
    /// Monitored verticals with their term lists.
    pub monitored: Vec<MonitoredVertical>,
    /// The accumulated crawl database.
    pub db: CrawlDb,
    /// Domains checked and found clean (skipped until they disappear —
    /// the churn trim).
    clean: HashSet<u32>,
}

impl Crawler {
    /// Creates a crawler over a monitored term set.
    pub fn new(cfg: CrawlerConfig, monitored: Vec<MonitoredVertical>) -> Self {
        Crawler { cfg, monitored, db: CrawlDb::new(), clean: HashSet::new() }
    }

    /// Domains checked and found clean (for methodology validation).
    pub fn known_clean(&self) -> impl Iterator<Item = &u32> {
        self.clean.iter()
    }

    /// Crawls one day across all monitored verticals.
    pub fn crawl_day(&mut self, world: &mut World, day: SimDate) {
        for vi in 0..self.monitored.len() {
            self.crawl_vertical(world, day, vi);
        }
    }

    /// New-domain fraction among today's results (the paper reports 1.84%
    /// average daily churn) — measured over the most recent crawl day.
    pub fn last_day_churn(&self, day: SimDate) -> f64 {
        let seen_today: HashSet<u32> = self
            .db
            .psrs
            .iter()
            .filter(|p| p.day == day)
            .map(|p| p.domain)
            .collect();
        if seen_today.is_empty() {
            return 0.0;
        }
        let new = seen_today
            .iter()
            .filter(|d| self.db.doorway_info.get(d).map(|i| i.first_seen == day).unwrap_or(false))
            .count();
        new as f64 / seen_today.len() as f64
    }

    fn crawl_vertical(&mut self, world: &mut World, day: SimDate, vi: usize) {
        let terms = self.monitored[vi].terms.clone();
        let mut count = DailyCount {
            day,
            vertical: vi as u16,
            top10_seen: 0,
            top10_poisoned: 0,
            total_seen: 0,
            total_poisoned: 0,
        };
        for term in &terms {
            let Some(results) = query_by_text(world, term, day, self.cfg.serp_depth) else {
                continue;
            };
            for (rank, url, labeled) in results {
                count.total_seen += 1;
                if rank <= 10 {
                    count.top10_seen += 1;
                }
                let domain_id = self.db.domains.intern(url.host.as_str());

                let poisoned = self.resolve_domain(world, day, domain_id, &url, term);
                if poisoned {
                    count.total_poisoned += 1;
                    if rank <= 10 {
                        count.top10_poisoned += 1;
                    }
                    let term_id = self.db.terms.intern(term);
                    let landing = self
                        .db
                        .doorway_info
                        .get(&domain_id)
                        .and_then(|i| i.landings.last().map(|(_, l)| *l));
                    self.observe_label(domain_id, day, labeled);
                    self.db.psrs.push(PsrRecord {
                        day,
                        vertical: vi as u16,
                        term: term_id,
                        rank: rank.min(255) as u8,
                        domain: domain_id,
                        is_root: url.is_root_page(),
                        labeled,
                        landing,
                    });
                }
            }
        }
        self.db.daily_counts.push(count);
    }

    /// Returns whether the domain is (now) known to be poisoned, running
    /// detection/verification as needed.
    fn resolve_domain(
        &mut self,
        world: &mut World,
        day: SimDate,
        domain_id: u32,
        url: &Url,
        term: &str,
    ) -> bool {
        if let Some(info) = self.db.doorway_info.get_mut(&domain_id) {
            info.last_seen = day;
            if info.cloak.is_none() {
                return false; // churn trim: known clean
            }
            // Known poisoned: periodic cheap landing re-verification.
            if day.days_since(info.last_verified) >= i64::from(self.cfg.reverify_days) {
                self.reverify_landing(world, day, domain_id, url, term);
            }
            return true;
        }
        if self.clean.contains(&domain_id) {
            return false;
        }

        // First sighting: run the detection stack.
        let mut verdict = dagger::check(world, url, term, self.cfg.max_hops);
        if verdict.cloaked.is_none() {
            // Dagger quiet: rendering pass, within the per-domain budget.
            let rendered_so_far = 0u8;
            if rendered_so_far < self.cfg.render_sample {
                verdict = vangogh::check(world, url, term, self.cfg.max_hops);
            }
        }

        match verdict.cloaked {
            None => {
                self.clean.insert(domain_id);
                false
            }
            Some(signal) => {
                let mut info = DomainInfo {
                    first_seen: day,
                    last_seen: day,
                    cloak: Some(signal),
                    landings: Vec::new(),
                    label_seen: None,
                    last_unlabeled_before: None,
                    rendered_pages: 1,
                    last_verified: day,
                };
                if let Some(landing) = verdict.landing.clone() {
                    let landing_id = self.db.domains.intern(landing.host.as_str());
                    info.landings.push((day, landing_id));
                    self.db.doorway_info.insert(domain_id, info);
                    self.visit_store(world, day, landing_id, &landing);
                } else {
                    self.db.doorway_info.insert(domain_id, info);
                }
                true
            }
        }
    }

    /// Re-resolves where a known-poisoned doorway lands today.
    fn reverify_landing(
        &mut self,
        world: &mut World,
        day: SimDate,
        domain_id: u32,
        url: &Url,
        term: &str,
    ) {
        let signal = self.db.doorway_info[&domain_id].cloak.expect("poisoned");
        let verdict = match signal {
            CloakSignal::Iframe => vangogh::check(world, url, term, self.cfg.max_hops),
            _ => dagger::check(world, url, term, self.cfg.max_hops),
        };
        let info = self.db.doorway_info.get_mut(&domain_id).expect("known");
        info.last_verified = day;
        if let Some(landing) = verdict.landing {
            let landing_id = self.db.domains.intern(landing.host.as_str());
            let changed = info.landings.last().map(|(_, l)| *l != landing_id).unwrap_or(true);
            if changed {
                info.landings.push((day, landing_id));
            }
            self.visit_store(world, day, landing_id, &landing);
        }
    }

    /// Visits a landing (store) domain: store detection, HTML capture,
    /// seizure observation.
    fn visit_store(&mut self, world: &mut World, day: SimDate, landing_id: u32, landing: &Url) {
        let root = Url::root(landing.host.clone());
        let resp = world.fetch(&Request {
            url: root,
            user_agent: UserAgent::Browser,
            referrer: Some(dagger::google_referrer("landing")),
        });

        if let Some(notice) = stores::parse_seizure_notice(&resp.body) {
            let last_alive = self.db.store_info.get(&landing_id).map(|s| s.last_seen);
            let entry = self.db.store_info.entry(landing_id).or_insert_with(|| StoreInfo {
                first_seen: day,
                last_seen: day,
                is_store: false,
                html: String::new(),
                cookie_names: Vec::new(),
                seizure: None,
                last_alive_before_seizure: None,
            });
            if entry.seizure.is_none() {
                entry.seizure = Some((day, notice));
                entry.last_alive_before_seizure = last_alive;
            }
            return;
        }

        let verdict = stores::detect_store(&resp.body, &resp.cookies);
        let entry = self.db.store_info.entry(landing_id).or_insert_with(|| StoreInfo {
            first_seen: day,
            last_seen: day,
            is_store: false,
            html: String::new(),
            cookie_names: Vec::new(),
            seizure: None,
            last_alive_before_seizure: None,
        });
        entry.last_seen = day;
        if verdict.is_store() {
            entry.is_store = true;
            if entry.html.is_empty() {
                entry.html = resp.body;
                entry.cookie_names = resp.cookies.into_iter().map(|c| c.name).collect();
            }
        }
    }

    /// Records hacked-label state transitions for delay estimation.
    fn observe_label(&mut self, domain_id: u32, day: SimDate, labeled: bool) {
        let Some(info) = self.db.doorway_info.get_mut(&domain_id) else { return };
        match (labeled, info.label_seen) {
            (true, None) => info.label_seen = Some((day, day)),
            (true, Some((first, _))) => info.label_seen = Some((first, day)),
            (false, None) => info.last_unlabeled_before = Some(day),
            (false, Some(_)) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms;
    use ss_eco::ScenarioConfig;

    fn crawl_world(days: u32) -> (World, Crawler) {
        let mut w = World::build(ScenarioConfig::tiny(23)).unwrap();
        let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
        w.run_until(start);
        let monitored = terms::select_all(&mut w, start, 6, 5);
        let mut crawler = Crawler::new(
            CrawlerConfig { serp_depth: 30, ..CrawlerConfig::default() },
            monitored,
        );
        for d in 0..days {
            let day = start + 1 + d;
            w.run_until(day);
            crawler.crawl_day(&mut w, day);
        }
        (w, crawler)
    }

    #[test]
    fn crawl_accumulates_psrs_and_counts() {
        let (_w, crawler) = crawl_world(6);
        assert!(!crawler.db.psrs.is_empty(), "no PSRs found");
        assert!(!crawler.db.daily_counts.is_empty());
        let poisoned = crawler.db.poisoned_domains().count();
        assert!(poisoned > 0);
        // Every PSR's rank is within the crawled depth.
        assert!(crawler.db.psrs.iter().all(|p| (1..=30).contains(&p.rank)));
    }

    #[test]
    fn detected_domains_are_really_doorways() {
        // Methodology validation in miniature: zero false positives
        // against ground truth (§4.1.3 found none either).
        let (w, crawler) = crawl_world(5);
        for (id, _) in crawler.db.poisoned_domains() {
            let name = crawler.db.domains.resolve(*id);
            let domain = w.domains.lookup(&ss_types::DomainName::parse(name).unwrap()).unwrap();
            assert!(
                w.doorway_truth(domain).is_some(),
                "crawler flagged non-doorway {name}"
            );
        }
    }

    #[test]
    fn stores_are_detected_behind_doorways() {
        let (w, crawler) = crawl_world(6);
        let stores: Vec<&u32> = crawler.db.detected_stores().map(|(id, _)| id).collect();
        assert!(!stores.is_empty(), "no stores detected");
        for id in stores {
            let name = crawler.db.domains.resolve(*id);
            let domain = w.domains.lookup(&ss_types::DomainName::parse(name).unwrap()).unwrap();
            let kind = &w.domains.get(domain).kind;
            assert!(
                matches!(kind, ss_eco::domains::SiteKind::Storefront { .. }),
                "{name} flagged as store but is {kind:?}"
            );
        }
        // Store HTML was captured for the classifier.
        assert!(crawler.db.detected_stores().all(|(_, s)| !s.html.is_empty()));
    }

    #[test]
    fn churn_trim_skips_known_clean_domains() {
        let (_w, crawler) = crawl_world(4);
        assert!(!crawler.clean.is_empty(), "no clean domains cached");
        // Clean domains never appear among poisoned.
        for id in &crawler.clean {
            assert!(!crawler.db.doorway_info.contains_key(id));
        }
    }

    #[test]
    fn churn_rate_is_low_after_warmup() {
        let (_w, crawler) = crawl_world(8);
        let last = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 8);
        let churn = crawler.last_day_churn(last);
        assert!(churn < 0.5, "churn {churn} implausibly high after warmup");
    }
}

//! Entity-plane refactor gates.
//!
//! Two kinds of protection for the component-table storage:
//!
//! 1. **Round-trip properties** — the nested structs (`StoreState`,
//!    `CampaignState`, `DoorwayState`) are still the builder form; pushing
//!    one into a table and materializing it back must be the identity, and
//!    the borrowed row views must agree field-for-field with the nested
//!    values. This is the pre-refactor ↔ post-refactor equivalence proof
//!    on arbitrary (not just world-generator-shaped) data.
//! 2. **Pinned-seed fingerprint goldens** — `World::state_fingerprint`
//!    values recorded on the nested-struct implementation immediately
//!    before the table refactor, checked at several tick thread counts.

use proptest::prelude::*;
use ss_eco::campaign::{ActivityWindow, CampaignState, DoorwayState};
use ss_eco::store::{MonthStats, StoreState};
use ss_eco::{CampaignTable, ScenarioConfig, StoreTable, World};
use ss_types::{BrandId, CampaignId, DomainId, SimDate, StoreId, TermId, VerticalId};
use ss_web::cloak::CloakMode;

// ---- generators (the vendored proptest keeps strategies simple; rich
// ---- structs are drawn from the test RNG directly) ----

fn day(rng: &mut TestRng) -> SimDate {
    SimDate::from_day_index(rng.below(500) as u32)
}

fn word(rng: &mut TestRng, len: u64) -> String {
    (0..2 + rng.below(len))
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

fn month_stats(rng: &mut TestRng) -> MonthStats {
    MonthStats {
        year_month: (2013 + rng.below(2) as i32, 1 + rng.below(12) as u32),
        visits: rng.below(10_000),
        pages: rng.below(10_000),
        referrers: (0..rng.below(4))
            .map(|_| (format!("{}.com", word(rng, 8)), rng.below(500)))
            .collect(),
        direct_visits: rng.below(500),
        daily: (0..rng.below(6))
            .map(|_| (day(rng), rng.below(200), rng.below(400)))
            .collect(),
    }
}

fn store_state(rng: &mut TestRng, id: usize) -> StoreState {
    StoreState {
        id: StoreId::from_index(id),
        campaign: CampaignId::from_index(rng.below(64) as usize),
        name: word(rng, 20),
        brands: (0..rng.below(5))
            .map(|_| BrandId::from_index(rng.below(40) as usize))
            .collect(),
        locale: ["us", "uk", "fr", "de", "jp"][rng.below(5) as usize].to_owned(),
        current_domain: DomainId::from_index(rng.below(4096) as usize),
        domain_history: (0..1 + rng.below(4))
            .map(|_| (day(rng), DomainId::from_index(rng.below(4096) as usize)))
            .collect(),
        backup_pool: (0..rng.below(4))
            .map(|_| DomainId::from_index(rng.below(4096) as usize))
            .collect(),
        order_counter: rng.below(1_000_000),
        orders_accrued: rng.below(1_000_000),
        merchant_id: word(rng, 10),
        awstats_public: rng.next_u64() & 1 == 1,
        created: day(rng),
        months: (0..rng.below(4)).map(|_| month_stats(rng)).collect(),
        seed: rng.next_u64(),
        retired: rng.next_u64() & 1 == 1,
    }
}

fn doorway_state(rng: &mut TestRng) -> DoorwayState {
    DoorwayState {
        domain: DomainId::from_index(rng.below(4096) as usize),
        terms: (0..1 + rng.below(5))
            .map(|_| TermId::from_index(rng.below(2048) as usize))
            .collect(),
        vertical: VerticalId::from_index(rng.below(16) as usize),
        target_store: StoreId::from_index(rng.below(64) as usize),
        live_from: day(rng),
        live_until: day(rng),
        penalized: (rng.next_u64() & 1 == 1).then(|| day(rng)),
    }
}

fn campaign_state(rng: &mut TestRng, id: usize) -> CampaignState {
    CampaignState {
        id: CampaignId::from_index(id),
        name: word(rng, 12).to_ascii_uppercase(),
        classified: rng.next_u64() & 1 == 1,
        verticals: (0..1 + rng.below(3))
            .map(|_| VerticalId::from_index(rng.below(16) as usize))
            .collect(),
        doorways: (0..rng.below(6)).map(|_| doorway_state(rng)).collect(),
        stores: (0..rng.below(4))
            .map(|_| StoreId::from_index(rng.below(64) as usize))
            .collect(),
        cloak: match rng.below(3) {
            0 => CloakMode::Redirect,
            1 => CloakMode::JsRedirect,
            _ => CloakMode::Iframe {
                obfuscation: rng.below(4) as u8,
            },
        },
        windows: (0..rng.below(3))
            .map(|_| ActivityWindow {
                from: day(rng),
                to: day(rng),
                juice: rng.below(1000) as f64 / 1000.0,
            })
            .collect(),
        reaction_days: rng.below(30) as u32,
        supplier_partner: rng.next_u64() & 1 == 1,
    }
}

// ---- round-trip properties ----

proptest! {
    /// StoreTable: push → materialize is the identity, and the row view
    /// exposes exactly the nested fields.
    #[test]
    fn store_rows_roundtrip_nested_values(seed: u64, n in 0usize..12) {
        let mut rng = TestRng::for_test(&format!("store-roundtrip-{seed}"));
        let specs: Vec<StoreState> = (0..n).map(|i| store_state(&mut rng, i)).collect();

        let mut table = StoreTable::default();
        for s in &specs {
            table.push(s.clone());
        }
        prop_assert_eq!(table.len(), specs.len());
        for s in &specs {
            prop_assert_eq!(&table.materialize(s.id), s);
            let r = table.row(s.id);
            prop_assert_eq!(r.id, s.id);
            prop_assert_eq!(r.campaign, s.campaign);
            prop_assert_eq!(r.name, s.name.as_str());
            prop_assert_eq!(r.brands, s.brands.as_slice());
            prop_assert_eq!(r.locale, s.locale.as_str());
            prop_assert_eq!(r.current_domain, s.current_domain);
            prop_assert_eq!(r.domain_history, s.domain_history.as_slice());
            prop_assert_eq!(r.backup_pool, s.backup_pool.as_slice());
            prop_assert_eq!(r.order_counter, s.order_counter);
            prop_assert_eq!(r.orders_accrued, s.orders_accrued);
            prop_assert_eq!(r.merchant_id, s.merchant_id.as_str());
            prop_assert_eq!(r.awstats_public, s.awstats_public);
            prop_assert_eq!(r.created, s.created);
            prop_assert_eq!(r.months, s.months.as_slice());
            prop_assert_eq!(r.seed, s.seed);
            prop_assert_eq!(r.retired, s.retired);
        }
        // Interning must conflate locales exactly when the strings match.
        for (a, b) in specs.iter().zip(specs.iter().skip(1)) {
            prop_assert_eq!(
                table.row(a.id).locale_id == table.row(b.id).locale_id,
                a.locale == b.locale
            );
        }
    }

    /// CampaignTable: push (fleet via `push_doorway`) → materialize is the
    /// identity, and doorway rows agree with the nested fleet in order.
    #[test]
    fn campaign_rows_roundtrip_nested_values(seed: u64, n in 0usize..8) {
        let mut rng = TestRng::for_test(&format!("campaign-roundtrip-{seed}"));
        let specs: Vec<CampaignState> = (0..n).map(|i| campaign_state(&mut rng, i)).collect();

        let mut table = CampaignTable::default();
        for c in &specs {
            let mut shell = c.clone();
            let fleet = std::mem::take(&mut shell.doorways);
            let id = table.push(shell);
            for d in fleet {
                table.push_doorway(id, d);
            }
        }
        prop_assert_eq!(table.len(), specs.len());
        for c in &specs {
            prop_assert_eq!(&table.materialize(c.id), c);
            let r = table.row(c.id);
            prop_assert_eq!(r.name, c.name.as_str());
            prop_assert_eq!(r.classified, c.classified);
            prop_assert_eq!(r.verticals, c.verticals.as_slice());
            prop_assert_eq!(r.stores, c.stores.as_slice());
            prop_assert_eq!(r.cloak, c.cloak);
            prop_assert_eq!(r.windows, c.windows.as_slice());
            prop_assert_eq!(r.reaction_days, c.reaction_days);
            prop_assert_eq!(r.supplier_partner, c.supplier_partner);
            prop_assert_eq!(r.doorways.len(), c.doorways.len());
            for (row, nested) in r.doorways.iter().zip(c.doorways.iter()) {
                prop_assert_eq!(row.domain, nested.domain);
                prop_assert_eq!(row.terms, nested.terms.as_slice());
                prop_assert_eq!(row.vertical, nested.vertical);
                prop_assert_eq!(row.target_store, nested.target_store);
                prop_assert_eq!(row.live_from, nested.live_from);
                prop_assert_eq!(row.live_until, nested.live_until);
                prop_assert_eq!(row.penalized, nested.penalized);
                prop_assert_eq!(row.campaign, c.id);
            }
        }
    }
}

/// On a generated world that has actually run (rotations, penalties,
/// traffic), every store and campaign must materialize to a nested form
/// consistent with its row view, and the routing table must agree with
/// campaign ownership.
#[test]
fn world_rows_stay_consistent_after_running() {
    for seed in [7u64, 2014] {
        let mut w = World::build(ScenarioConfig::tiny(seed)).unwrap();
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 20));

        for s in w.stores.iter() {
            let m = w.stores.materialize(s.id);
            assert_eq!(m.name, s.name);
            assert_eq!(m.locale, s.locale);
            assert_eq!(m.current_domain, s.current_domain);
            assert_eq!(m.domain_history, s.domain_history);
            assert_eq!(m.order_counter, s.order_counter);
            assert_eq!(m.months, s.months);
        }
        for c in w.campaigns.iter() {
            let m = w.campaigns.materialize(c.id);
            assert_eq!(m.doorways.len(), c.doorways.len());
            for d in c.doorways.iter() {
                let (owner, truth) = w
                    .doorway_truth(d.domain)
                    .expect("every doorway domain routes to its row");
                assert_eq!(owner, c.id);
                assert_eq!(truth.domain, d.domain);
                assert_eq!(truth.target_store, d.target_store);
            }
        }
    }
}

// ---- pinned fingerprint goldens ----

fn fingerprint(cfg: ScenarioConfig, threads: usize, until: u32) -> u64 {
    let mut w = World::build(cfg).unwrap();
    w.tick_threads = threads;
    w.run_until(SimDate::from_day_index(until));
    w.state_fingerprint()
}

/// Golden recorded on the nested-struct (pre-table) implementation.
#[test]
fn state_fingerprint_golden_tiny() {
    for threads in [1usize, 2, 8] {
        assert_eq!(
            fingerprint(ScenarioConfig::tiny(2014), threads, 232),
            0x2415f1d4268869fb,
            "tiny fingerprint drifted at threads={threads}"
        );
    }
}

/// Golden recorded on the nested-struct (pre-table) implementation.
/// Slow in debug builds; CI runs it in release via `--include-ignored`.
#[test]
#[ignore = "slow in debug builds; CI runs it in release"]
fn state_fingerprint_golden_small() {
    for threads in [1usize, 2, 8] {
        assert_eq!(
            fingerprint(ScenarioConfig::small(2014), threads, 170),
            0xc93edf15d4221787,
            "small fingerprint drifted at threads={threads}"
        );
    }
}

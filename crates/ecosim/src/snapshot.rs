//! Snapshot codecs for the ecosystem state plane.
//!
//! Everything `World::tick` reads or writes is captured here: the scenario
//! config, the domain table, the ground-truth event log, and the full
//! [`World`] itself (which nests the engine, supplier, metrics registry,
//! flight recorder, and event trail). Decoding rebuilds the world through
//! the same choke points construction uses — `new_shell` plus the entity
//! tables' `push` paths — so derived structures (the domain→doorway route,
//! per-campaign store templates, interner ids, the suggest service) are
//! re-derived rather than serialized, and cannot drift from the columns
//! they index.
//!
//! Not captured, by design: `tick_threads` (a runtime knob the resume
//! caller chooses; any value commits a bit-identical world) and wall-clock
//! span timings (excluded from the metrics registry's own snapshot).

use std::collections::BTreeMap;

use ss_search::EngineOp;
use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use ss_types::{
    BrandId, CampaignId, CaseId, DomainId, DomainName, FirmId, SimDate, StoreId, TermId, VerticalId,
};
use ss_web::cloak::CloakMode;
use ss_web::pagegen::legit::LegitTheme;
use ss_web::pagegen::storefront::StoreTemplate;

use crate::campaign::{ActivityWindow, CampaignState, DoorwayState};
use crate::domains::{DomainTable, Seizure, SiteKind};
use crate::events::{Event, EventLog};
use crate::legal::{CourtCase, FirmState};
use crate::plan::{TickStage, TrailEvent, WorldEvent};
use crate::scenario::{PaymentPolicy, Scale, ScenarioConfig, SearchPolicy, SeizurePolicy};
use crate::store::{MonthStats, StoreState};
use crate::world::{VerticalState, World};

// ---- leaf helpers ----

fn put_cloak(w: &mut Writer, c: &CloakMode) {
    match c {
        CloakMode::Redirect => w.put_u8(0),
        CloakMode::JsRedirect => w.put_u8(1),
        CloakMode::Iframe { obfuscation } => {
            w.put_u8(2);
            w.put_u8(*obfuscation);
        }
    }
}

fn get_cloak(r: &mut Reader<'_>) -> Result<CloakMode, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => CloakMode::Redirect,
        1 => CloakMode::JsRedirect,
        2 => CloakMode::Iframe {
            obfuscation: r.get_u8()?,
        },
        b => return Err(SnapshotError::Corrupt(format!("cloak mode byte {b}"))),
    })
}

fn put_theme(w: &mut Writer, t: LegitTheme) {
    w.put_u8(match t {
        LegitTheme::News => 0,
        LegitTheme::Blog => 1,
        LegitTheme::Retailer => 2,
        LegitTheme::Forum => 3,
        LegitTheme::Official => 4,
    });
}

fn get_theme(r: &mut Reader<'_>) -> Result<LegitTheme, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => LegitTheme::News,
        1 => LegitTheme::Blog,
        2 => LegitTheme::Retailer,
        3 => LegitTheme::Forum,
        4 => LegitTheme::Official,
        b => return Err(SnapshotError::Corrupt(format!("legit theme byte {b}"))),
    })
}

/// Resolves a brand string back to the `&'static str` the market tables
/// own. Brand names live in static tables; state only ever references
/// them, so the lookup is total for uncorrupted snapshots.
fn static_brand(name: &str) -> Result<&'static str, SnapshotError> {
    ss_types::market::all_brands()
        .into_iter()
        .find(|b| *b == name)
        .ok_or_else(|| SnapshotError::Corrupt(format!("unknown brand {name:?}")))
}

/// Resolves a tick-stage name back to its `&'static str` (the event
/// trail's stage vocabulary is exactly [`TickStage::ALL`]).
fn static_stage(name: &str) -> Result<&'static str, SnapshotError> {
    TickStage::ALL
        .iter()
        .map(|s| s.name())
        .find(|n| *n == name)
        .ok_or_else(|| SnapshotError::Corrupt(format!("unknown tick stage {name:?}")))
}

fn put_site_kind(w: &mut Writer, k: &SiteKind) {
    match k {
        SiteKind::Legit { theme, brand } => {
            w.put_u8(0);
            put_theme(w, *theme);
            w.put_str(brand);
        }
        SiteKind::Doorway {
            campaign,
            compromised,
            cloak,
            target_store,
        } => {
            w.put_u8(1);
            w.put_u32(campaign.0);
            w.put_bool(*compromised);
            put_cloak(w, cloak);
            w.put_u32(target_store.0);
        }
        SiteKind::Storefront { store } => {
            w.put_u8(2);
            w.put_u32(store.0);
        }
        SiteKind::Supplier => w.put_u8(3),
        SiteKind::OffstageStore => w.put_u8(4),
    }
}

fn get_site_kind(r: &mut Reader<'_>) -> Result<SiteKind, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => {
            let theme = get_theme(r)?;
            let brand = static_brand(&r.get_str()?)?;
            SiteKind::Legit { theme, brand }
        }
        1 => SiteKind::Doorway {
            campaign: CampaignId(r.get_u32()?),
            compromised: r.get_bool()?,
            cloak: get_cloak(r)?,
            target_store: StoreId(r.get_u32()?),
        },
        2 => SiteKind::Storefront {
            store: StoreId(r.get_u32()?),
        },
        3 => SiteKind::Supplier,
        4 => SiteKind::OffstageStore,
        b => return Err(SnapshotError::Corrupt(format!("site kind byte {b}"))),
    })
}

fn put_seizure(w: &mut Writer, s: &Seizure) {
    w.put_date(s.day);
    w.put_u32(s.case.0);
    w.put_u32(s.firm.0);
}

fn get_seizure(r: &mut Reader<'_>) -> Result<Seizure, SnapshotError> {
    Ok(Seizure {
        day: r.get_date()?,
        case: CaseId(r.get_u32()?),
        firm: FirmId(r.get_u32()?),
    })
}

fn put_event(w: &mut Writer, e: &Event) {
    match e {
        Event::CampaignActive { campaign, from, to } => {
            w.put_u8(0);
            w.put_u32(campaign.0);
            w.put_date(*from);
            w.put_date(*to);
        }
        Event::DoorwayPenalized {
            domain,
            day,
            labeled,
        } => {
            w.put_u8(1);
            w.put_u32(domain.0);
            w.put_date(*day);
            w.put_bool(*labeled);
        }
        Event::CaseFiled {
            firm,
            case,
            day,
            domains,
        } => {
            w.put_u8(2);
            w.put_u32(firm.0);
            w.put_u32(case.0);
            w.put_date(*day);
            w.put_seq(domains, |w, d| w.put_u32(d.0));
        }
        Event::StoreRotated {
            store,
            day,
            from,
            to,
            reactive,
        } => {
            w.put_u8(3);
            w.put_u32(store.0);
            w.put_date(*day);
            w.put_u32(from.0);
            w.put_u32(to.0);
            w.put_bool(*reactive);
        }
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<Event, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => Event::CampaignActive {
            campaign: CampaignId(r.get_u32()?),
            from: r.get_date()?,
            to: r.get_date()?,
        },
        1 => Event::DoorwayPenalized {
            domain: DomainId(r.get_u32()?),
            day: r.get_date()?,
            labeled: r.get_bool()?,
        },
        2 => Event::CaseFiled {
            firm: FirmId(r.get_u32()?),
            case: CaseId(r.get_u32()?),
            day: r.get_date()?,
            domains: r.get_seq(|r| Ok(DomainId(r.get_u32()?)))?,
        },
        3 => Event::StoreRotated {
            store: StoreId(r.get_u32()?),
            day: r.get_date()?,
            from: DomainId(r.get_u32()?),
            to: DomainId(r.get_u32()?),
            reactive: r.get_bool()?,
        },
        b => return Err(SnapshotError::Corrupt(format!("event tag byte {b}"))),
    })
}

fn put_engine_op(w: &mut Writer, op: &EngineOp) {
    match op {
        EngineOp::SetJuice { domain, juice } => {
            w.put_u8(0);
            w.put_u32(domain.0);
            w.put_f64(*juice);
        }
        EngineOp::Demote { domain, penalty } => {
            w.put_u8(1);
            w.put_u32(domain.0);
            w.put_f64(*penalty);
        }
        EngineOp::LabelHacked { domain, day } => {
            w.put_u8(2);
            w.put_u32(domain.0);
            w.put_date(*day);
        }
    }
}

fn get_engine_op(r: &mut Reader<'_>) -> Result<EngineOp, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => EngineOp::SetJuice {
            domain: DomainId(r.get_u32()?),
            juice: r.get_f64()?,
        },
        1 => EngineOp::Demote {
            domain: DomainId(r.get_u32()?),
            penalty: r.get_f64()?,
        },
        2 => EngineOp::LabelHacked {
            domain: DomainId(r.get_u32()?),
            day: r.get_date()?,
        },
        b => return Err(SnapshotError::Corrupt(format!("engine op byte {b}"))),
    })
}

fn put_world_event(w: &mut Writer, e: &WorldEvent) {
    match e {
        WorldEvent::Engine(op) => {
            w.put_u8(0);
            put_engine_op(w, op);
        }
        WorldEvent::PenalizeDoorway { domain, labeled } => {
            w.put_u8(1);
            w.put_u32(domain.0);
            w.put_bool(*labeled);
        }
        WorldEvent::FileCase {
            firm,
            brand,
            targets,
            bulk,
        } => {
            w.put_u8(2);
            w.put_u32(firm.0);
            w.put_u32(brand.0);
            w.put_seq(targets, |w, d| w.put_u32(d.0));
            w.put_u32(*bulk);
        }
        WorldEvent::DrainRotations => w.put_u8(3),
        WorldEvent::Rotate { store, reactive } => {
            w.put_u8(4);
            w.put_u32(store.0);
            w.put_bool(*reactive);
        }
        WorldEvent::StoreTraffic {
            store,
            visits,
            pages,
            referred,
            direct,
            orders,
        } => {
            w.put_u8(5);
            w.put_u32(store.0);
            w.put_u64(*visits);
            w.put_u64(*pages);
            w.put_seq(referred, |w, (host, n)| {
                w.put_str(host);
                w.put_u64(*n);
            });
            w.put_u64(*direct);
            w.put_u64(*orders);
        }
        WorldEvent::SupplierExternal { orders } => {
            w.put_u8(6);
            w.put_u64(*orders);
        }
        WorldEvent::AdvanceDay => w.put_u8(7),
    }
}

fn get_world_event(r: &mut Reader<'_>) -> Result<WorldEvent, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => WorldEvent::Engine(get_engine_op(r)?),
        1 => WorldEvent::PenalizeDoorway {
            domain: DomainId(r.get_u32()?),
            labeled: r.get_bool()?,
        },
        2 => WorldEvent::FileCase {
            firm: FirmId(r.get_u32()?),
            brand: BrandId(r.get_u32()?),
            targets: r.get_seq(|r| Ok(DomainId(r.get_u32()?)))?,
            bulk: r.get_u32()?,
        },
        3 => WorldEvent::DrainRotations,
        4 => WorldEvent::Rotate {
            store: StoreId(r.get_u32()?),
            reactive: r.get_bool()?,
        },
        5 => WorldEvent::StoreTraffic {
            store: StoreId(r.get_u32()?),
            visits: r.get_u64()?,
            pages: r.get_u64()?,
            referred: r.get_seq(|r| Ok((r.get_str()?, r.get_u64()?)))?,
            direct: r.get_u64()?,
            orders: r.get_u64()?,
        },
        6 => WorldEvent::SupplierExternal {
            orders: r.get_u64()?,
        },
        7 => WorldEvent::AdvanceDay,
        b => return Err(SnapshotError::Corrupt(format!("world event byte {b}"))),
    })
}

// ---- scenario config ----

impl Snapshot for ScenarioConfig {
    const TAG: &'static str = "scenario";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_u64(self.seed);
        // Scalar counts use raw u64s: `put_len` is reserved for sequence
        // lengths, whose reader bounds-checks against remaining bytes.
        w.put_u64(self.scale.verticals as u64);
        w.put_u64(self.scale.terms_per_vertical as u64);
        w.put_u64(self.scale.legit_per_term as u64);
        w.put_u64(self.scale.serp_depth as u64);
        w.put_f64(self.scale.entity_scale);
        w.put_u64(self.scale.shadow_campaigns as u64);
        w.put_u32(self.scale.end_day);
        let sp = &self.search_policy;
        w.put_f64(sp.detect_prob);
        w.put_u32(sp.delay_min);
        w.put_u32(sp.delay_max);
        w.put_f64(sp.demote_penalty);
        w.put_bool(sp.apply_label);
        w.put_f64(sp.label_deterrence);
        w.put_seq(&self.seizure_policies, |w, p| {
            w.put_u32(p.case_interval);
            w.put_f64(p.observed_fraction);
            w.put_u32(p.target_lifetime);
        });
        w.put_f64(self.conversion_rate);
        w.put_f64(self.pages_per_visit);
        w.put_f64(self.referrer_rate);
        w.put_f64(self.impressions_per_term);
        w.put_f64(self.organic_orders_per_day);
        w.put_bool(self.proactive_rotation);
        let pp = &self.payment_policy;
        w.put_bool(pp.enabled);
        w.put_u32(pp.start_day);
        w.put_seq(&pp.blocked, |w, s| w.put_str(s));
        w.put_opt(pp.migration_days.as_ref(), |w, d| w.put_u32(*d));
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(ScenarioConfig {
            seed: r.get_u64()?,
            scale: Scale {
                verticals: r.get_u64()? as usize,
                terms_per_vertical: r.get_u64()? as usize,
                legit_per_term: r.get_u64()? as usize,
                serp_depth: r.get_u64()? as usize,
                entity_scale: r.get_f64()?,
                shadow_campaigns: r.get_u64()? as usize,
                end_day: r.get_u32()?,
            },
            search_policy: SearchPolicy {
                detect_prob: r.get_f64()?,
                delay_min: r.get_u32()?,
                delay_max: r.get_u32()?,
                demote_penalty: r.get_f64()?,
                apply_label: r.get_bool()?,
                label_deterrence: r.get_f64()?,
            },
            seizure_policies: r.get_seq(|r| {
                Ok(SeizurePolicy {
                    case_interval: r.get_u32()?,
                    observed_fraction: r.get_f64()?,
                    target_lifetime: r.get_u32()?,
                })
            })?,
            conversion_rate: r.get_f64()?,
            pages_per_visit: r.get_f64()?,
            referrer_rate: r.get_f64()?,
            impressions_per_term: r.get_f64()?,
            organic_orders_per_day: r.get_f64()?,
            proactive_rotation: r.get_bool()?,
            payment_policy: PaymentPolicy {
                enabled: r.get_bool()?,
                start_day: r.get_u32()?,
                blocked: r.get_seq(|r| r.get_str())?,
                migration_days: r.get_opt(|r| r.get_u32())?,
            },
        })
    }
}

// ---- domain table ----

impl Snapshot for DomainTable {
    const TAG: &'static str = "domain-table";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_len(self.len());
        for rec in self.iter() {
            w.put_str(rec.name.as_str());
            put_site_kind(w, &rec.kind);
            w.put_date(rec.created);
            w.put_opt(rec.seized.as_ref(), put_seizure);
        }
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut table = DomainTable::new();
        for _ in 0..r.get_len()? {
            let name = r.get_str()?;
            let name = DomainName::parse(&name)
                .map_err(|e| SnapshotError::Corrupt(format!("domain name {name:?}: {e}")))?;
            let kind = get_site_kind(r)?;
            let created = r.get_date()?;
            let seized = r.get_opt(get_seizure)?;
            let id = table.register(name, kind, created);
            if let Some(s) = seized {
                table.seize(id, s);
            }
        }
        Ok(table)
    }
}

// ---- event log ----

impl Snapshot for EventLog {
    const TAG: &'static str = "event-log";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_seq(self.all(), put_event);
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut log = EventLog::new();
        for _ in 0..r.get_len()? {
            log.push(get_event(r)?);
        }
        Ok(log)
    }
}

// ---- world sub-structure helpers ----

fn put_doorway(w: &mut Writer, d: &DoorwayState) {
    w.put_u32(d.domain.0);
    w.put_seq(&d.terms, |w, t| w.put_u32(t.0));
    w.put_u32(d.vertical.0);
    w.put_u32(d.target_store.0);
    w.put_date(d.live_from);
    w.put_date(d.live_until);
    w.put_opt(d.penalized.as_ref(), |w, day| w.put_date(*day));
}

fn get_doorway(r: &mut Reader<'_>) -> Result<DoorwayState, SnapshotError> {
    Ok(DoorwayState {
        domain: DomainId(r.get_u32()?),
        terms: r.get_seq(|r| Ok(TermId(r.get_u32()?)))?,
        vertical: VerticalId(r.get_u32()?),
        target_store: StoreId(r.get_u32()?),
        live_from: r.get_date()?,
        live_until: r.get_date()?,
        penalized: r.get_opt(|r| r.get_date())?,
    })
}

fn put_campaign(w: &mut Writer, c: &CampaignState) {
    w.put_str(&c.name);
    w.put_bool(c.classified);
    w.put_seq(&c.verticals, |w, v| w.put_u32(v.0));
    w.put_seq(&c.doorways, put_doorway);
    w.put_seq(&c.stores, |w, s| w.put_u32(s.0));
    put_cloak(w, &c.cloak);
    w.put_seq(&c.windows, |w, win| {
        w.put_date(win.from);
        w.put_date(win.to);
        w.put_f64(win.juice);
    });
    w.put_u32(c.reaction_days);
    w.put_bool(c.supplier_partner);
}

fn get_campaign(r: &mut Reader<'_>, id: CampaignId) -> Result<CampaignState, SnapshotError> {
    Ok(CampaignState {
        id,
        name: r.get_str()?,
        classified: r.get_bool()?,
        verticals: r.get_seq(|r| Ok(VerticalId(r.get_u32()?)))?,
        doorways: r.get_seq(get_doorway)?,
        stores: r.get_seq(|r| Ok(StoreId(r.get_u32()?)))?,
        cloak: get_cloak(r)?,
        windows: r.get_seq(|r| {
            Ok(ActivityWindow {
                from: r.get_date()?,
                to: r.get_date()?,
                juice: r.get_f64()?,
            })
        })?,
        reaction_days: r.get_u32()?,
        supplier_partner: r.get_bool()?,
    })
}

fn put_month(w: &mut Writer, m: &MonthStats) {
    w.put_i64(i64::from(m.year_month.0));
    w.put_u32(m.year_month.1);
    w.put_u64(m.visits);
    w.put_u64(m.pages);
    w.put_seq(&m.referrers, |w, (host, n)| {
        w.put_str(host);
        w.put_u64(*n);
    });
    w.put_u64(m.direct_visits);
    w.put_seq(&m.daily, |w, (day, visits, pages)| {
        w.put_date(*day);
        w.put_u64(*visits);
        w.put_u64(*pages);
    });
}

fn get_month(r: &mut Reader<'_>) -> Result<MonthStats, SnapshotError> {
    Ok(MonthStats {
        year_month: (r.get_i64()? as i32, r.get_u32()?),
        visits: r.get_u64()?,
        pages: r.get_u64()?,
        referrers: r.get_seq(|r| Ok((r.get_str()?, r.get_u64()?)))?,
        direct_visits: r.get_u64()?,
        daily: r.get_seq(|r| Ok((r.get_date()?, r.get_u64()?, r.get_u64()?)))?,
    })
}

fn put_store(w: &mut Writer, s: &StoreState) {
    w.put_u32(s.campaign.0);
    w.put_str(&s.name);
    w.put_seq(&s.brands, |w, b| w.put_u32(b.0));
    w.put_str(&s.locale);
    w.put_u32(s.current_domain.0);
    w.put_seq(&s.domain_history, |w, (day, dom)| {
        w.put_date(*day);
        w.put_u32(dom.0);
    });
    w.put_seq(&s.backup_pool, |w, d| w.put_u32(d.0));
    w.put_u64(s.order_counter);
    w.put_u64(s.orders_accrued);
    w.put_str(&s.merchant_id);
    w.put_bool(s.awstats_public);
    w.put_date(s.created);
    w.put_seq(&s.months, put_month);
    w.put_u64(s.seed);
    w.put_bool(s.retired);
}

fn get_store(r: &mut Reader<'_>, id: StoreId) -> Result<StoreState, SnapshotError> {
    Ok(StoreState {
        id,
        campaign: CampaignId(r.get_u32()?),
        name: r.get_str()?,
        brands: r.get_seq(|r| Ok(BrandId(r.get_u32()?)))?,
        locale: r.get_str()?,
        current_domain: DomainId(r.get_u32()?),
        domain_history: r.get_seq(|r| Ok((r.get_date()?, DomainId(r.get_u32()?))))?,
        backup_pool: r.get_seq(|r| Ok(DomainId(r.get_u32()?)))?,
        order_counter: r.get_u64()?,
        orders_accrued: r.get_u64()?,
        merchant_id: r.get_str()?,
        awstats_public: r.get_bool()?,
        created: r.get_date()?,
        months: r.get_seq(get_month)?,
        seed: r.get_u64()?,
        retired: r.get_bool()?,
    })
}

fn put_firm(w: &mut Writer, f: &FirmState) {
    w.put_str(&f.name);
    w.put_seq(&f.brands, |w, b| w.put_u32(b.0));
    w.put_u32(f.policy.case_interval);
    w.put_f64(f.policy.observed_fraction);
    w.put_u32(f.policy.target_lifetime);
    w.put_seq(&f.cases, |w, c| {
        w.put_u32(c.id.0);
        w.put_u32(c.brand.0);
        w.put_str(&c.docket);
        w.put_date(c.day);
        w.put_seq(&c.domains, |w, d| w.put_u32(d.0));
    });
}

fn get_firm(r: &mut Reader<'_>, id: FirmId) -> Result<FirmState, SnapshotError> {
    Ok(FirmState {
        id,
        name: r.get_str()?,
        brands: r.get_seq(|r| Ok(BrandId(r.get_u32()?)))?,
        policy: SeizurePolicy {
            case_interval: r.get_u32()?,
            observed_fraction: r.get_f64()?,
            target_lifetime: r.get_u32()?,
        },
        cases: r.get_seq(|r| {
            Ok(CourtCase {
                id: CaseId(r.get_u32()?),
                firm: id,
                brand: BrandId(r.get_u32()?),
                docket: r.get_str()?,
                day: r.get_date()?,
                domains: r.get_seq(|r| Ok(DomainId(r.get_u32()?)))?,
            })
        })?,
    })
}

fn put_day_map<T>(
    w: &mut Writer,
    map: &BTreeMap<SimDate, Vec<T>>,
    mut f: impl FnMut(&mut Writer, &T),
) {
    w.put_len(map.len());
    for (day, items) in map {
        w.put_date(*day);
        w.put_len(items.len());
        for item in items {
            f(w, item);
        }
    }
}

fn get_day_map<T>(
    r: &mut Reader<'_>,
    mut f: impl FnMut(&mut Reader<'_>) -> Result<T, SnapshotError>,
) -> Result<BTreeMap<SimDate, Vec<T>>, SnapshotError> {
    let mut map = BTreeMap::new();
    for _ in 0..r.get_len()? {
        let day = r.get_date()?;
        let n = r.get_len()?;
        let mut items = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            items.push(f(r)?);
        }
        if map.insert(day, items).is_some() {
            return Err(SnapshotError::Corrupt(format!("duplicate day key {day}")));
        }
    }
    Ok(map)
}

// ---- the world ----

impl Snapshot for World {
    const TAG: &'static str = "world";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_nested(&self.cfg);
        w.put_nested(&self.engine);
        w.put_date(self.day);
        w.put_nested(&self.domains);
        w.put_seq(&self.verticals, |w, v| {
            w.put_str(v.spec.name);
            w.put_u32(v.id.0);
            w.put_seq(&v.terms, |w, t| w.put_u32(t.0));
            w.put_f64(v.popularity);
            w.put_f64(v.elite_prob);
        });
        w.put_seq(&self.brand_names, |w, b| w.put_str(b));
        w.put_len(self.campaigns.len());
        for ci in 0..self.campaigns.len() {
            put_campaign(w, &self.campaigns.materialize(CampaignId::from_index(ci)));
        }
        w.put_len(self.stores.len());
        for si in 0..self.stores.len() {
            put_store(w, &self.stores.materialize(StoreId::from_index(si)));
        }
        w.put_seq(&self.firms, put_firm);
        w.put_nested(&self.supplier);
        w.put_u32(self.supplier_domain.0);
        w.put_nested(&self.events);
        put_day_map(w, &self.penalty_due, |w, d| w.put_u32(d.0));
        put_day_map(w, &self.pending_rotations, |w, s| w.put_u32(s.0));
        put_day_map(w, &self.proactive_rotations, |w, s| w.put_u32(s.0));
        put_day_map(w, &self.scripted_seizures, |w, (d, f)| {
            w.put_u32(d.0);
            w.put_u32(f.0);
        });
        w.put_u32(self.next_case);
        w.put_nested(&self.metrics);
        w.put_nested(&self.recorder);
        w.put_seq(&self.event_trail, |w, t| {
            w.put_date(t.day);
            w.put_str(t.stage);
            put_world_event(w, &t.event);
        });
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let cfg: ScenarioConfig = r.get_nested()?;
        let engine = r.get_nested()?;
        let seed = cfg.seed;
        let mut world = World::new_shell(cfg, engine);
        world.day = r.get_date()?;
        world.domains = r.get_nested()?;

        world.verticals = r.get_seq(|r| {
            let name = r.get_str()?;
            let spec = ss_types::market::VERTICALS
                .iter()
                .find(|s| s.name == name)
                .ok_or_else(|| SnapshotError::Corrupt(format!("unknown vertical {name:?}")))?;
            Ok(VerticalState {
                id: VerticalId(r.get_u32()?),
                spec,
                terms: r.get_seq(|r| Ok(TermId(r.get_u32()?)))?,
                popularity: r.get_f64()?,
                elite_prob: r.get_f64()?,
            })
        })?;
        world.brand_names = {
            let names = r.get_seq(|r| r.get_str())?;
            let mut out = Vec::with_capacity(names.len());
            for n in &names {
                out.push(static_brand(n)?);
            }
            out
        };

        // Campaigns re-enter through the same `push`/`push_doorway` paths
        // construction uses, which re-derives the doorway route and the
        // per-campaign store templates as side products of row order.
        for ci in 0..r.get_len()? {
            let id = CampaignId::from_index(ci);
            let mut c = get_campaign(r, id)?;
            let doorways = std::mem::take(&mut c.doorways);
            let name = c.name.clone();
            world.campaigns.push(c);
            for d in doorways {
                let domain = d.domain;
                let row = world.campaigns.push_doorway(id, d);
                world.route.set(domain, row);
            }
            world
                .templates
                .push(StoreTemplate::for_campaign(&name, seed));
        }
        for si in 0..r.get_len()? {
            let s = get_store(r, StoreId::from_index(si))?;
            world.stores.push(s);
        }

        let n_firms = r.get_len()?;
        world.firms = Vec::with_capacity(n_firms.min(1 << 10));
        for fi in 0..n_firms {
            let f = get_firm(r, FirmId::from_index(fi))?;
            world.firms.push(f);
        }
        world.supplier = r.get_nested()?;
        world.supplier_domain = DomainId(r.get_u32()?);
        world.events = r.get_nested()?;
        world.penalty_due = get_day_map(r, |r| Ok(DomainId(r.get_u32()?)))?;
        world.pending_rotations = get_day_map(r, |r| Ok(StoreId(r.get_u32()?)))?;
        world.proactive_rotations = get_day_map(r, |r| Ok(StoreId(r.get_u32()?)))?;
        world.scripted_seizures =
            get_day_map(r, |r| Ok((DomainId(r.get_u32()?), FirmId(r.get_u32()?))))?;
        world.next_case = r.get_u32()?;
        world.metrics = r.get_nested()?;
        world.recorder = r.get_nested()?;
        world.event_trail = r.get_seq(|r| {
            Ok(TrailEvent {
                day: r.get_date()?,
                stage: static_stage(&r.get_str()?)?,
                event: get_world_event(r)?,
            })
        })?;
        Ok(world)
    }
}

impl World {
    /// Shifts every not-yet-simulated scripted seizure by `offset` days
    /// (negative = earlier). Shifted days clamp to the current day so no
    /// pending seizure silently lands in the already-simulated past. This
    /// is the intervention knob `repro sweep` turns on each forked arm of
    /// a checkpoint: one decode per arm, one offset per arm.
    pub fn shift_scripted_seizures(&mut self, offset: i64) {
        if offset == 0 {
            return;
        }
        let floor = i64::from(self.day.day_index());
        let pending = self.scripted_seizures.split_off(&self.day);
        for (day, items) in pending {
            let shifted = (i64::from(day.day_index()) + offset).max(floor);
            self.scripted_seizures
                .entry(SimDate::from_day_index(shifted as u32))
                .or_default()
                .extend(items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn ticked_world(days: u32) -> World {
        let mut w = World::build(ScenarioConfig::tiny(11)).unwrap();
        w.set_trace(ss_obs::TraceLevel::Event);
        for _ in 0..days {
            w.tick();
        }
        w
    }

    #[test]
    fn world_snapshot_roundtrip_preserves_fingerprint_and_replay() {
        let mut a = ticked_world(60);
        let bytes = a.encode();
        let mut b = World::decode(&bytes).unwrap();

        assert_eq!(a.day, b.day);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        assert_eq!(a.engine.state_fingerprint(), b.engine.state_fingerprint());
        assert_eq!(a.events.all(), b.events.all());
        assert_eq!(a.event_trail, b.event_trail);
        assert_eq!(a.recorder.render(), b.recorder.render());
        assert_eq!(a.metrics.metrics_json(), b.metrics.metrics_json());

        // The restored world replays the future bit-identically — the
        // resume contract the state plane exists for.
        for _ in 0..15 {
            a.tick();
            b.tick();
        }
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        assert_eq!(a.events.all(), b.events.all());
        assert_eq!(a.event_trail, b.event_trail);
    }

    #[test]
    fn world_snapshot_is_deterministic() {
        let a = ticked_world(40);
        let b = ticked_world(40);
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn corrupted_world_snapshots_are_rejected() {
        let w = ticked_world(10);
        let bytes = w.encode();
        assert!(matches!(
            World::decode(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::IntegrityMismatch | SnapshotError::Truncated)
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(World::decode(&flipped).is_err());
    }

    #[test]
    fn shifting_scripted_seizures_moves_only_the_future() {
        let mut w = ticked_world(30);
        let today = w.day;
        let past: Vec<SimDate> = w
            .scripted_seizures
            .keys()
            .copied()
            .filter(|d| *d < today)
            .collect();
        let future: Vec<SimDate> = w
            .scripted_seizures
            .keys()
            .copied()
            .filter(|d| *d >= today)
            .collect();
        assert!(!future.is_empty(), "tiny world should script seizures late");
        w.shift_scripted_seizures(7);
        for d in &past {
            assert!(w.scripted_seizures.contains_key(d), "past entry moved");
        }
        for d in &future {
            assert!(w.scripted_seizures.contains_key(&(*d + 7u32)));
        }
        // Large negative offsets clamp to today instead of vanishing.
        let mut v = ticked_world(30);
        let pending: usize = v
            .scripted_seizures
            .iter()
            .filter(|(d, _)| **d >= v.day)
            .map(|(_, items)| items.len())
            .sum();
        v.shift_scripted_seizures(-10_000);
        assert_eq!(v.scripted_seizures.get(&v.day).map_or(0, Vec::len), pending);
    }

    #[test]
    fn scenario_config_roundtrips() {
        for cfg in [
            ScenarioConfig::tiny(3),
            ScenarioConfig::small(9),
            ScenarioConfig::paper(1),
        ] {
            assert_eq!(ScenarioConfig::decode(&cfg.encode()).unwrap(), cfg);
        }
        let mut cfg = ScenarioConfig::tiny(4);
        cfg.payment_policy = PaymentPolicy {
            enabled: true,
            start_day: 150,
            blocked: vec!["realypay".into()],
            migration_days: Some(14),
        };
        assert_eq!(ScenarioConfig::decode(&cfg.encode()).unwrap(), cfg);
    }
}

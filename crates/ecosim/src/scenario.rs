//! Scenario configuration: scale presets, calibration knobs, and the
//! intervention-policy parameters the what-if experiments sweep.

use ss_types::{Error, Result, SimDate};

/// How big a world to build.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Number of verticals to monitor (≤ 16; taken in Table 1 order).
    pub verticals: usize,
    /// Monitored search terms per vertical (paper: 100).
    pub terms_per_vertical: usize,
    /// Legitimate pages indexed per term (competition for doorways).
    pub legit_per_term: usize,
    /// SERP depth crawled daily (paper: top 100).
    pub serp_depth: usize,
    /// Multiplier applied to Table 2 per-campaign doorway/store counts.
    pub entity_scale: f64,
    /// Number of unclassified "shadow" campaigns filling the long tail.
    pub shadow_campaigns: usize,
    /// Simulation end day (inclusive). The paper's world runs to the end of
    /// the Figure 5 window; the crawl subset of it is fixed by
    /// [`ss_types::CRAWL_START_DAY`]/[`ss_types::CRAWL_END_DAY`].
    pub end_day: u32,
}

impl Scale {
    /// Paper-scale world: 16 verticals × 100 terms, Table 2 sizes.
    pub fn paper() -> Self {
        Scale {
            verticals: 16,
            terms_per_vertical: 100,
            legit_per_term: 150,
            serp_depth: 100,
            entity_scale: 1.0,
            shadow_campaigns: 240,
            end_day: ss_types::CASE_STUDY_END_DAY,
        }
    }

    /// Stress-scale world, ~10× the paper's page volume: the full term
    /// matrix with denser term lists, deeper legitimate competition, 4×
    /// entity counts, and a three-fold shadow tail. Exists to prove the
    /// entity plane's headroom, not to match the measurement study.
    pub fn mega() -> Self {
        Scale {
            verticals: 16,
            terms_per_vertical: 150,
            legit_per_term: 150,
            serp_depth: 100,
            entity_scale: 4.0,
            shadow_campaigns: 750,
            end_day: ss_types::CASE_STUDY_END_DAY,
        }
    }

    /// Small world for tests and examples: every dynamic preserved,
    /// ~50× fewer pages. The crawl window still starts on day 131 but the
    /// world ends shortly after the Figure 6 seizure beat.
    pub fn small() -> Self {
        Scale {
            verticals: 6,
            terms_per_vertical: 12,
            legit_per_term: 40,
            serp_depth: 50,
            entity_scale: 0.08,
            shadow_campaigns: 70,
            end_day: 260,
        }
    }

    /// Tiny world for unit tests of downstream crates.
    pub fn tiny() -> Self {
        Scale {
            verticals: 3,
            terms_per_vertical: 6,
            legit_per_term: 25,
            serp_depth: 30,
            entity_scale: 0.04,
            shadow_campaigns: 6,
            end_day: 200,
        }
    }
}

/// Search-engine intervention policy (§5.2): how aggressively the engine
/// detects and penalizes doorways. The defaults reproduce the paper's
/// observations; the what-if example sweeps them.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchPolicy {
    /// Probability that an active doorway domain is ever detected.
    /// The paper measures only 2.5% of PSRs carrying the hacked label.
    pub detect_prob: f64,
    /// Detection delay bounds in days once a doorway starts ranking
    /// (paper: labels appear 13–32 days after first sighting).
    pub delay_min: u32,
    /// Upper delay bound.
    pub delay_max: u32,
    /// Demotion penalty applied on detection (score units; 0 disables).
    pub demote_penalty: f64,
    /// Whether detection also sets the "hacked" label.
    pub apply_label: bool,
    /// Click-through deterrence of a visible label (fraction of users who
    /// skip a labeled result).
    pub label_deterrence: f64,
}

impl Default for SearchPolicy {
    fn default() -> Self {
        SearchPolicy {
            detect_prob: 0.08,
            delay_min: 13,
            delay_max: 32,
            demote_penalty: 0.25,
            apply_label: true,
            label_deterrence: 0.35,
        }
    }
}

/// Brand-holder seizure policy (§5.3) for one firm.
#[derive(Debug, Clone, PartialEq)]
pub struct SeizurePolicy {
    /// Days between court cases (bulk seizure rounds).
    pub case_interval: u32,
    /// Fraction of a case's domains that are storefronts we could observe
    /// via PSRs (the rest are "offstage" bulk filler, as in the court docs).
    pub observed_fraction: f64,
    /// Mean store lifetime before seizure in days (drives which stores get
    /// picked: older stores are likelier targets).
    pub target_lifetime: u32,
}

/// Payment-level intervention (the §4.3.2 future work, implemented as an
/// extension): from `start_day`, the named processors stop settling for
/// counterfeit merchants. Campaigns with an unblocked processor available
/// migrate after `migration_days`; blocking all three with no migration
/// window models the full "follow the money" intervention of the
/// Priceless line of work the paper cites.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PaymentPolicy {
    /// Whether the intervention is active at all.
    pub enabled: bool,
    /// Day the processors cut the merchants off.
    pub start_day: u32,
    /// Processor names blocked ("realypay", "mallpayment", "globalbill").
    pub blocked: Vec<String>,
    /// Days a campaign needs to onboard with a surviving processor
    /// (`None` = no migration possible).
    pub migration_days: Option<u32>,
}

/// Full scenario configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed; every stream in the world derives from it.
    pub seed: u64,
    /// World size.
    pub scale: Scale,
    /// Search-engine intervention policy.
    pub search_policy: SearchPolicy,
    /// Per-firm seizure cadence (GBC, SMGPA order).
    pub seizure_policies: Vec<SeizurePolicy>,
    /// Visit → order conversion rate (paper estimate: 0.7%, §5.2.3).
    pub conversion_rate: f64,
    /// Mean HTML pages per store visit (paper: 5.6).
    pub pages_per_visit: f64,
    /// Fraction of visits that carry a referrer (paper: 60%).
    pub referrer_rate: f64,
    /// Mean daily query impressions per monitored term.
    pub impressions_per_term: f64,
    /// Non-search baseline orders per store per day (direct/email traffic).
    pub organic_orders_per_day: f64,
    /// Whether campaigns proactively rotate store domains even without a
    /// seizure (the BIGLOVE coco*.com behaviour, §5.2.3).
    pub proactive_rotation: bool,
    /// Payment-level intervention (disabled by default; §4.3.2 extension).
    pub payment_policy: PaymentPolicy,
}

impl ScenarioConfig {
    /// Paper-calibrated scenario at the given scale.
    pub fn new(seed: u64, scale: Scale) -> Self {
        ScenarioConfig {
            seed,
            scale,
            search_policy: SearchPolicy::default(),
            seizure_policies: vec![
                // GBC: ~69 cases over ~2.4 years ≈ every 13 days; reacts on
                // stores that lived ~58–68 days.
                SeizurePolicy {
                    case_interval: 13,
                    observed_fraction: 0.007,
                    target_lifetime: 63,
                },
                // SMGPA: ~47 cases over ~2.4 years ≈ every 19 days.
                SeizurePolicy {
                    case_interval: 19,
                    observed_fraction: 0.009,
                    target_lifetime: 52,
                },
            ],
            conversion_rate: 0.007,
            pages_per_visit: 5.6,
            referrer_rate: 0.60,
            impressions_per_term: 420.0,
            organic_orders_per_day: 0.8,
            proactive_rotation: true,
            payment_policy: PaymentPolicy::default(),
        }
    }

    /// Paper-scale scenario.
    pub fn paper(seed: u64) -> Self {
        Self::new(seed, Scale::paper())
    }

    /// Stress-scale scenario (~10× paper page volume): mega world plus a
    /// denser query stream so traffic planning scales with the page count.
    pub fn mega(seed: u64) -> Self {
        let mut cfg = Self::new(seed, Scale::mega());
        cfg.impressions_per_term = 1200.0;
        cfg
    }

    /// Small scenario for tests/examples.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, Scale::small())
    }

    /// Tiny scenario for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self::new(seed, Scale::tiny())
    }

    /// Validates configuration invariants.
    pub fn validate(&self) -> Result<()> {
        if self.scale.verticals == 0 || self.scale.verticals > ss_types::market::VERTICALS.len() {
            return Err(Error::InvalidConfig(format!(
                "verticals must be 1..={}, got {}",
                ss_types::market::VERTICALS.len(),
                self.scale.verticals
            )));
        }
        if self.scale.terms_per_vertical == 0 {
            return Err(Error::InvalidConfig(
                "terms_per_vertical must be positive".into(),
            ));
        }
        if self.scale.end_day <= ss_types::CRAWL_START_DAY {
            return Err(Error::InvalidConfig(
                "end_day must exceed the crawl start".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.conversion_rate)
            || !(0.0..=1.0).contains(&self.referrer_rate)
            || !(0.0..=1.0).contains(&self.search_policy.detect_prob)
            || !(0.0..=1.0).contains(&self.search_policy.label_deterrence)
        {
            return Err(Error::InvalidConfig("rates must lie in [0, 1]".into()));
        }
        if self.search_policy.delay_min > self.search_policy.delay_max {
            return Err(Error::InvalidConfig("label delay bounds inverted".into()));
        }
        if self.seizure_policies.is_empty() {
            return Err(Error::InvalidConfig(
                "at least one seizure firm required".into(),
            ));
        }
        Ok(())
    }

    /// Last simulated day as a date.
    pub fn end_date(&self) -> SimDate {
        SimDate::from_day_index(self.scale.end_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ScenarioConfig::paper(1),
            ScenarioConfig::mega(1),
            ScenarioConfig::small(1),
            ScenarioConfig::tiny(1),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ScenarioConfig::small(1);
        cfg.scale.verticals = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ScenarioConfig::small(1);
        cfg.conversion_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = ScenarioConfig::small(1);
        cfg.search_policy.delay_min = 40;
        assert!(cfg.validate().is_err());

        let mut cfg = ScenarioConfig::small(1);
        cfg.scale.end_day = 10;
        assert!(cfg.validate().is_err());

        let mut cfg = ScenarioConfig::small(1);
        cfg.seizure_policies.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn paper_scale_matches_study_shape() {
        let s = Scale::paper();
        assert_eq!(s.verticals, 16);
        assert_eq!(s.terms_per_vertical, 100);
        assert_eq!(s.serp_depth, 100);
        assert_eq!(s.end_day, ss_types::CASE_STUDY_END_DAY);
    }
}

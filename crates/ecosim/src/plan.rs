//! The tick plane's plan/commit protocol.
//!
//! Every tick stage is a **pure planner** over `&World`: it reads frozen
//! state, draws only from keyed RNG sub-streams
//! ([`ss_types::rng::stream_rng`], keyed by `(seed, stage, day, entity)`),
//! and emits an ordered [`WorldEvent`] log. [`World::apply_plan`] is the
//! single mutation choke point that replays the log sequentially — the same
//! architecture as the read plane's `Fetcher::fetch` → `Web::apply` and the
//! crawler's snapshot → `CrawlDb::apply_log`.
//!
//! Because a planner's output is a pure function of world state and the
//! stream keys, heavy planners fan out over scoped threads (traffic across
//! verticals and store shards, seizure scans across store shards) and the
//! committed world is bit-identical at any thread count.

use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ss_search::EngineOp;
use ss_types::rng::{derive_seed, stream_rng, stream_seed, unit_f64};
use ss_types::{BrandId, CaseId, DomainId, FirmId, SimDate, StoreId};

use crate::domains::{Seizure, SiteKind};
use crate::events::Event;
use crate::legal::CourtCase;
use crate::traffic;
use crate::world::{elite_draw, World};

/// Per-store search arrivals: total visits plus referrer rows
/// `(doorway host, clicks)`, merged in vertical order.
type StoreSearchVisits = HashMap<StoreId, (u64, Vec<(String, u64)>)>;

/// The five stages of one simulated day, in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickStage {
    /// Campaigns push juice onto live doorway domains.
    Juice,
    /// The search engine's anti-abuse team lands due penalties.
    SearchPolicy,
    /// Brand-protection firms file seizure cases.
    Seizures,
    /// Due (reactive and scripted-proactive) store rotations execute.
    Rotations,
    /// Users search, click, browse, buy.
    Traffic,
}

impl TickStage {
    /// All stages, in the order `World::tick` runs them.
    pub const ALL: [TickStage; 5] = [
        TickStage::Juice,
        TickStage::SearchPolicy,
        TickStage::Seizures,
        TickStage::Rotations,
        TickStage::Traffic,
    ];

    /// Stable stage name (metric label and RNG stream key).
    pub fn name(self) -> &'static str {
        match self {
            TickStage::Juice => "juice",
            TickStage::SearchPolicy => "search-policy",
            TickStage::Seizures => "seizures",
            TickStage::Rotations => "rotations",
            TickStage::Traffic => "traffic",
        }
    }

    /// Cost-ledger phase path for this stage (`tick/<name>`).
    pub fn cost_path(self) -> &'static str {
        match self {
            TickStage::Juice => "tick/juice",
            TickStage::SearchPolicy => "tick/search-policy",
            TickStage::Seizures => "tick/seizures",
            TickStage::Rotations => "tick/rotations",
            TickStage::Traffic => "tick/traffic",
        }
    }
}

/// One committed world mutation, produced by a stage planner and replayed
/// by [`World::apply_plan`]. The log fully specifies the day's decisions:
/// applying it reads no RNG and makes no further choices.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldEvent {
    /// A search-engine mutation (juice, demotion, hacked label), flushed
    /// through `SearchEngine::apply_batch` in plan order.
    Engine(EngineOp),
    /// Mark a doorway penalized in the campaign's ground truth.
    PenalizeDoorway {
        /// The doorway domain.
        domain: DomainId,
        /// Whether the hacked label was applied (vs. demotion only).
        labeled: bool,
    },
    /// File one court case seizing `targets` plus `bulk` offstage filler
    /// domains registered at apply time.
    FileCase {
        /// Executing firm.
        firm: FirmId,
        /// Brand the case is filed under.
        brand: BrandId,
        /// Observed storefront domains to seize.
        targets: Vec<DomainId>,
        /// Number of bulk offstage domains to register and seize.
        bulk: u32,
    },
    /// Remove every rotation due on or before the plan's day from the
    /// pending/proactive queues (the due entries are the `Rotate` events
    /// that follow in the same plan).
    DrainRotations,
    /// Rotate a store to its next backup domain (folding it if the pool
    /// is exhausted).
    Rotate {
        /// The store.
        store: StoreId,
        /// Whether this reacts to a seizure (vs. scripted-proactive).
        reactive: bool,
    },
    /// Commit one store's daily traffic: AWStats rows, order-counter
    /// advance, and supplier fulfillment for partnered campaigns.
    StoreTraffic {
        /// The store.
        store: StoreId,
        /// Total visits (search + direct).
        visits: u64,
        /// HTML page fetches.
        pages: u64,
        /// Referrer tallies `(doorway host, visits)`.
        referred: Vec<(String, u64)>,
        /// Visits carrying no referrer.
        direct: u64,
        /// Orders placed.
        orders: u64,
    },
    /// Supplier fulfillment for outside wholesale members the study never
    /// saw (§3.1.2).
    SupplierExternal {
        /// Order volume.
        orders: u64,
    },
    /// Advance the world clock to the next day.
    AdvanceDay,
}

impl WorldEvent {
    /// Stable kind tag, used to bucket trail entries in `repro diff`.
    pub fn kind(&self) -> &'static str {
        match self {
            WorldEvent::Engine(_) => "engine",
            WorldEvent::PenalizeDoorway { .. } => "penalize-doorway",
            WorldEvent::FileCase { .. } => "file-case",
            WorldEvent::DrainRotations => "drain-rotations",
            WorldEvent::Rotate { .. } => "rotate",
            WorldEvent::StoreTraffic { .. } => "store-traffic",
            WorldEvent::SupplierExternal { .. } => "supplier-external",
            WorldEvent::AdvanceDay => "advance-day",
        }
    }
}

/// One retained tick-plane event with its provenance — an entry in the
/// persisted `WorldEvent` log (`World::event_trail`) that the causal
/// `repro explain` queries walk.
#[derive(Debug, Clone, PartialEq)]
pub struct TrailEvent {
    /// Day the event was committed.
    pub day: SimDate,
    /// The tick stage that planned it.
    pub stage: &'static str,
    /// The committed mutation.
    pub event: WorldEvent,
}

impl World {
    /// Simulates the current day and advances the clock. Each stage plans
    /// against the state every earlier stage committed; all mutation goes
    /// through [`World::apply_plan`].
    pub fn tick(&mut self) {
        let today = self.day;
        for stage in TickStage::ALL {
            // Manual enter/exit (not the RAII scope): a guard would hold a
            // borrow of `self.metrics` across the `&mut self` calls below.
            // Work-only frames — stage planners may fan out internally, so
            // their heap pattern is thread-schedule-dependent.
            let started = std::time::Instant::now();
            self.metrics.cost_enter(false);
            let plan = self.plan_stage(stage, today);
            ss_obs::charge(ss_obs::WorkKind::EventsPlanned, plan.len() as u64);
            ss_obs::count!(
                self.metrics,
                "eco.tick_events",
                plan.len() as u64,
                stage = stage.name()
            );
            if self.recorder.enabled() {
                self.retain_plan(today, stage, &plan);
            }
            self.apply_plan(today, plan);
            self.metrics
                .cost_exit(stage.cost_path(), started.elapsed().as_nanos() as u64);
        }
        self.apply_plan(today, vec![WorldEvent::AdvanceDay]);
    }

    /// Trace-plane hook: records a per-stage summary into the flight
    /// recorder and retains intervention-relevant events on the event
    /// trail. Runs on the sequential commit path between planning and
    /// apply, so its order is independent of `tick_threads`.
    fn retain_plan(&mut self, day: SimDate, stage: TickStage, plan: &[WorldEvent]) {
        self.recorder.record(
            day.day_index(),
            stage.name(),
            plan.len() as u64,
            format!("planned {} events", plan.len()),
        );
        for ev in plan {
            match ev {
                WorldEvent::PenalizeDoorway { domain, labeled } => {
                    ss_obs::trace!(
                        self.recorder,
                        day.day_index(),
                        stage.name(),
                        domain.0,
                        "penalize doorway {domain} labeled={labeled}"
                    );
                }
                WorldEvent::FileCase {
                    firm,
                    brand,
                    targets,
                    bulk,
                } => {
                    ss_obs::trace!(
                        self.recorder,
                        day.day_index(),
                        stage.name(),
                        firm.0,
                        "file case firm={firm} brand={brand} targets={} bulk={bulk}",
                        targets.len()
                    );
                }
                WorldEvent::Rotate { store, reactive } => {
                    ss_obs::trace!(
                        self.recorder,
                        day.day_index(),
                        stage.name(),
                        store.0,
                        "rotate {store} reactive={reactive}"
                    );
                }
                _ => continue,
            }
            self.event_trail.push(TrailEvent {
                day,
                stage: stage.name(),
                event: ev.clone(),
            });
        }
    }

    /// Runs one stage's pure planner over the current state. Calling a
    /// planner never mutates the world; the same state yields the same
    /// plan at any thread count.
    pub fn plan_stage(&self, stage: TickStage, today: SimDate) -> Vec<WorldEvent> {
        match stage {
            TickStage::Juice => self.plan_juice(today),
            TickStage::SearchPolicy => self.plan_search_policy(today),
            TickStage::Seizures => self.plan_seizures(today),
            TickStage::Rotations => self.plan_rotations(today),
            TickStage::Traffic => self.plan_traffic(today),
        }
    }

    // ---- planners ----

    /// Stage 1: juice every doorway carries today (zero when the campaign
    /// is dormant or the doorway is dead). Elite-vs-tail multipliers come
    /// from the pre-keyed [`elite_draw`], so no stream is consumed here.
    /// A columnar scan: per campaign one juice lookup, then only the
    /// liveness/vertical/domain columns of its doorway range.
    fn plan_juice(&self, today: SimDate) -> Vec<WorldEvent> {
        let dt = self.campaigns.doorway_table();
        let mut plan = Vec::with_capacity(dt.len());
        for ci in 0..self.campaigns.len() {
            let base = self.campaigns.juice_on_at(ci, today);
            for di in self.campaigns.doorway_range(ci) {
                let juice = if base > 0.0 && dt.is_live_at(di, today) {
                    // Per-doorway multiplier: elites carry full juice (they
                    // crack the top 10), the rest ride the top-100 tail.
                    let p_elite = self.verticals[dt.vertical[di].index()].elite_prob;
                    let elite = elite_draw(self.cfg.seed, dt.domain[di]) < p_elite;
                    base * if elite { 1.0 } else { 0.42 }
                } else {
                    0.0
                };
                plan.push(WorldEvent::Engine(EngineOp::SetJuice {
                    domain: dt.domain[di],
                    juice,
                }));
            }
        }
        plan
    }

    /// Stage 2: pre-scheduled penalties (demotion + hacked label) due
    /// today, looked up in the due-day index.
    fn plan_search_policy(&self, today: SimDate) -> Vec<WorldEvent> {
        let policy = &self.cfg.search_policy;
        let mut plan = Vec::new();
        let Some(due) = self.penalty_due.get(&today) else {
            return plan;
        };
        for &domain in due {
            let Some(did) = self.route.doorway(domain) else {
                continue;
            };
            if !self
                .campaigns
                .doorway_table()
                .is_live_at(did.index(), today)
            {
                continue; // doorway died before detection caught up
            }
            if policy.demote_penalty > 0.0 {
                plan.push(WorldEvent::Engine(EngineOp::Demote {
                    domain,
                    penalty: policy.demote_penalty,
                }));
            }
            if policy.apply_label {
                plan.push(WorldEvent::Engine(EngineOp::LabelHacked {
                    domain,
                    day: today,
                }));
            }
            plan.push(WorldEvent::PenalizeDoorway {
                domain,
                labeled: policy.apply_label,
            });
        }
        plan
    }

    /// Stage 3: scripted seizures land on their exact days, then each firm
    /// due to file scans the store population for targets. The planner
    /// tracks what it already seized this tick so the plan is fully
    /// specified before any of it commits.
    fn plan_seizures(&self, today: SimDate) -> Vec<WorldEvent> {
        let mut plan = Vec::new();
        let mut seized_today: HashSet<DomainId> = HashSet::new();
        let mut cases_planned: HashMap<usize, usize> = HashMap::new();

        if let Some(scripted) = self.scripted_seizures.get(&today) {
            for &(dom, firm) in scripted {
                let brand = self.firms[firm.index()]
                    .brands
                    .first()
                    .copied()
                    .unwrap_or(BrandId(0));
                seized_today.insert(dom);
                *cases_planned.entry(firm.index()).or_default() += 1;
                plan.push(WorldEvent::FileCase {
                    firm,
                    brand,
                    targets: vec![dom],
                    bulk: 0,
                });
            }
        }

        let scan_seed = derive_seed(self.cfg.seed, "tick/seizure-scan");
        for fi in 0..self.firms.len() {
            let firm = &self.firms[fi];
            if !firm.files_on(today) || firm.brands.is_empty() {
                continue;
            }
            // Rotate through the firm's brand portfolio case by case,
            // counting cases planned earlier in this same tick.
            let case_no = firm.cases.len() + cases_planned.get(&fi).copied().unwrap_or(0);
            let brand = firm.brands[case_no % firm.brands.len()];
            let targets = self.scan_seizure_targets(fi, brand, today, scan_seed, &seized_today);
            // Bulk offstage filler: the court schedules' long tail.
            let bulk = ((targets.len().max(1)) as f64 / firm.policy.observed_fraction
                * self.cfg.scale.entity_scale)
                .min(800.0) as u32;
            if targets.is_empty() && bulk == 0 {
                continue;
            }
            seized_today.extend(targets.iter().copied());
            *cases_planned.entry(fi).or_default() += 1;
            plan.push(WorldEvent::FileCase {
                firm: FirmId::from_index(fi),
                brand,
                targets,
                bulk,
            });
        }
        plan
    }

    /// Scans stores for a firm's seizure targets, sharded across the tick
    /// worker pool and merged back in store order. Each `(firm, store)`
    /// pair gets one keyed draw, so the verdict is independent of scan
    /// order and thread schedule.
    fn scan_seizure_targets(
        &self,
        fi: usize,
        brand: BrandId,
        today: SimDate,
        scan_seed: u64,
        seized_today: &HashSet<DomainId>,
    ) -> Vec<DomainId> {
        let policy = &self.firms[fi].policy;
        let day = today.day_index();
        let ranges = shard_ranges(self.tick_threads, self.stores.len());
        // Columnar scan: touches only the retired/created/brands/current-
        // domain/history columns instead of walking whole store structs.
        let st = &self.stores;
        let hits = shard_map(self.tick_threads, ranges.len(), |ri| {
            let mut found = Vec::new();
            for si in ranges[ri].clone() {
                if st.retired[si] || st.created[si] > today || !st.brands_of(si).contains(&brand) {
                    continue;
                }
                let cur = st.current_domain[si];
                if self.domains.seizure_of(cur).is_some() || seized_today.contains(&cur) {
                    continue;
                }
                let since = st.domain_history[si]
                    .last()
                    .map(|(d, _)| *d)
                    .unwrap_or(st.created[si]);
                let age = today.days_since(since);
                if age < i64::from(policy.target_lifetime) / 2 {
                    continue;
                }
                // Firms find a store with probability rising in its age.
                let p = (age as f64 / f64::from(policy.target_lifetime.max(1))).min(1.0) * 0.35;
                let key = ((fi as u64) << 32) | si as u64;
                if unit_f64(stream_seed(scan_seed, day, key)) < p {
                    found.push(cur);
                }
            }
            found
        });
        hits.into_iter().flatten().collect()
    }

    /// Stage 4: rotations due today (reactive queue entries at or past
    /// their due day, plus exact-day scripted proactive ones).
    fn plan_rotations(&self, today: SimDate) -> Vec<WorldEvent> {
        let mut due: Vec<(StoreId, bool)> = Vec::new();
        for (_, stores) in self.pending_rotations.range(..=today) {
            due.extend(stores.iter().map(|&s| (s, true)));
        }
        if let Some(stores) = self.proactive_rotations.get(&today) {
            due.extend(stores.iter().map(|&s| (s, false)));
        }
        if due.is_empty() {
            return Vec::new();
        }
        let mut plan = vec![WorldEvent::DrainRotations];
        plan.extend(
            due.into_iter()
                .map(|(store, reactive)| WorldEvent::Rotate { store, reactive }),
        );
        plan
    }

    /// Stage 5: the day's traffic. Per-term click sweeps fan out over
    /// verticals, the per-store fold fans out over store shards; both
    /// draw from per-entity keyed streams and merge in index order.
    fn plan_traffic(&self, today: SimDate) -> Vec<WorldEvent> {
        let day = today.day_index();
        let term_seed = derive_seed(self.cfg.seed, "tick/traffic-terms");
        let store_seed = derive_seed(self.cfg.seed, "tick/traffic-stores");

        // Phase A: rank-biased clicks per (vertical, term), in parallel.
        let per_vertical = shard_map(self.tick_threads, self.verticals.len(), |vi| {
            self.plan_vertical_clicks(vi, today, term_seed)
        });
        // store → (search visits, referred[(host, n)]), merged in vertical
        // order so referrer rows keep a deterministic order.
        let mut store_visits: StoreSearchVisits = HashMap::new();
        for clicks in per_vertical {
            for tc in clicks {
                let entry = store_visits.entry(tc.store).or_default();
                entry.0 += tc.clicks;
                if let Some(referral) = tc.referred {
                    entry.1.push(referral);
                }
            }
        }

        // Phase B: fold visits into stores over shards, merged in store
        // order: orders, AWStats, supplier fulfillment.
        let ranges = shard_ranges(self.tick_threads, self.stores.len());
        let per_shard = shard_map(self.tick_threads, ranges.len(), |ri| {
            let mut out = Vec::new();
            for si in ranges[ri].clone() {
                if let Some(e) = self.plan_store_traffic(si, today, store_seed, &store_visits) {
                    out.push(e);
                }
            }
            out
        });
        let mut plan: Vec<WorldEvent> = per_shard.into_iter().flatten().collect();

        // The supplier also serves outside wholesale members the study
        // never saw (§3.1.2: the portal "support[s] outside sales on an
        // á la carte basis"). Stops with the record window.
        if today.day_index() <= ss_types::SUPPLIER_END_DAY {
            let mut rng = stream_rng(derive_seed(self.cfg.seed, "tick/supplier-external"), day, 0);
            plan.push(WorldEvent::SupplierExternal {
                orders: traffic::poisson(&mut rng, 900.0 * self.cfg.scale.entity_scale.max(0.02)),
            });
        }
        plan
    }

    /// One vertical's term sweep: impressions, rank-biased clicks, and
    /// referrer draws, all from the per-term keyed stream.
    fn plan_vertical_clicks(&self, vi: usize, today: SimDate, term_seed: u64) -> Vec<TermClicks> {
        let v = &self.verticals[vi];
        let depth = self.cfg.scale.serp_depth;
        let deterrence = self.cfg.search_policy.label_deterrence;
        let lambda = self.cfg.impressions_per_term * v.popularity;
        let day = today.day_index();
        // All shards of a tick read the same published epoch: id-based
        // SERPs, (term, day)-cached, no URL clones on this hot path.
        let epoch = self.engine.epoch();
        let mut out = Vec::new();
        for &term in &v.terms {
            let mut rng = stream_rng(term_seed, day, term.index() as u64);
            let impressions = traffic::poisson(&mut rng, lambda);
            if impressions == 0 {
                continue;
            }
            let serp = epoch.ranked(term, today, depth);
            for r in serp.results() {
                // Branchless route probe, then raw doorway/store columns.
                let Some(did) = self.route.doorway(r.domain) else {
                    continue;
                };
                let dt = self.campaigns.doorway_table();
                let di = did.index();
                if !dt.is_live_at(di, today) {
                    continue;
                }
                let mut rate = traffic::ctr(r.rank);
                if r.hacked_label {
                    rate *= 1.0 - deterrence;
                }
                let clicks = traffic::binomial(&mut rng, impressions, rate);
                if clicks == 0 {
                    continue;
                }
                // Click lands on the doorway; the cloak forwards it to
                // the store unless the store's domain is seized.
                let store = dt.target_store[di];
                let si = store.index();
                if self.stores.retired[si]
                    || self.stores.created[si] > today
                    || self
                        .domains
                        .seizure_of(self.stores.current_domain[si])
                        .is_some()
                {
                    continue; // notice page or dead store: traffic lost
                }
                let referred = traffic::binomial(&mut rng, clicks, self.cfg.referrer_rate);
                out.push(TermClicks {
                    store,
                    clicks,
                    referred: (referred > 0).then(|| {
                        (
                            self.domains.get(r.domain).name.as_str().to_owned(),
                            referred,
                        )
                    }),
                });
            }
        }
        out
    }

    /// One store's daily fold: direct visits, page fetches, conversions,
    /// organic orders, payment gating — all from the per-store stream.
    fn plan_store_traffic(
        &self,
        si: usize,
        today: SimDate,
        store_seed: u64,
        store_visits: &StoreSearchVisits,
    ) -> Option<WorldEvent> {
        if self.stores.retired[si] || self.stores.created[si] > today {
            return None;
        }
        let store = StoreId::from_index(si);
        let mut rng = stream_rng(store_seed, today.day_index(), si as u64);
        let (search_visits, referred) =
            store_visits.get(&store).cloned().unwrap_or((0, Vec::new()));
        let seized = self
            .domains
            .seizure_of(self.stores.current_domain[si])
            .is_some();
        let direct_visits = if seized {
            0
        } else {
            traffic::poisson(&mut rng, self.cfg.organic_orders_per_day * 12.0)
        };
        let visits = search_visits + direct_visits;
        let referred_total: u64 = referred.iter().map(|(_, n)| n).sum();
        let direct = visits - referred_total.min(visits);
        let pages = traffic::poisson(&mut rng, visits as f64 * self.cfg.pages_per_visit);
        let mut orders = traffic::binomial(&mut rng, visits, self.cfg.conversion_rate)
            + if seized {
                0
            } else {
                traffic::poisson(&mut rng, self.cfg.organic_orders_per_day * 0.12)
            };
        // Payment intervention: customers cannot complete checkout, so
        // no order numbers are consumed by sales (§4.3.2 extension).
        if !self.payment_available(self.stores.campaign[si], today) {
            orders = 0;
        }
        Some(WorldEvent::StoreTraffic {
            store,
            visits,
            pages,
            referred,
            direct,
            orders,
        })
    }

    // ---- the reducer ----

    /// The tick plane's single mutation choke point: replays a stage plan
    /// sequentially, in plan order. Search-engine ops are batched through
    /// `SearchEngine::apply_batch` (nothing in a plan reads the engine, so
    /// the flush point is unobservable).
    pub fn apply_plan(&mut self, day: SimDate, plan: Vec<WorldEvent>) {
        // No-op outside a cost frame; under `tick` it lands on the stage.
        ss_obs::charge(ss_obs::WorkKind::EventsApplied, plan.len() as u64);
        let mut engine_ops: Vec<EngineOp> = Vec::new();
        for event in plan {
            match event {
                WorldEvent::Engine(op) => engine_ops.push(op),
                WorldEvent::PenalizeDoorway { domain, labeled } => {
                    let Some(did) = self.route.doorway(domain) else {
                        continue;
                    };
                    self.campaigns.penalize_doorway(did, day);
                    ss_obs::count!(self.metrics, "eco.doorways_penalized");
                    self.events.push(Event::DoorwayPenalized {
                        domain,
                        day,
                        labeled,
                    });
                }
                WorldEvent::FileCase {
                    firm,
                    brand,
                    targets,
                    bulk,
                } => {
                    let mut domains = targets;
                    for b in 0..bulk {
                        let name = format!("bulk-{}-{}-{}.com", firm.index(), day.day_index(), b);
                        let id = self
                            .domains
                            .register_unique(&name, SiteKind::OffstageStore, day);
                        domains.push(id);
                    }
                    if !domains.is_empty() {
                        self.execute_case(firm, brand, day, domains);
                    }
                }
                WorldEvent::DrainRotations => {
                    let due: Vec<SimDate> = self
                        .pending_rotations
                        .range(..=day)
                        .map(|(d, _)| *d)
                        .collect();
                    for d in due {
                        self.pending_rotations.remove(&d);
                    }
                    self.proactive_rotations.remove(&day);
                }
                WorldEvent::Rotate { store, reactive } => self.apply_rotation(day, store, reactive),
                WorldEvent::StoreTraffic {
                    store,
                    visits,
                    pages,
                    referred,
                    direct,
                    orders,
                } => {
                    ss_obs::count!(self.metrics, "eco.store_visits", visits);
                    ss_obs::count!(self.metrics, "eco.orders", orders);
                    self.stores.add_orders(store, orders);
                    self.stores
                        .record_traffic(store, day, visits, pages, &referred, direct);
                    let campaign = self.stores.campaign[store.index()];
                    if orders > 0 && self.campaigns.row(campaign).supplier_partner {
                        self.supplier.fulfill(store, day, orders);
                    }
                }
                WorldEvent::SupplierExternal { orders } => {
                    self.supplier.fulfill(StoreId(u32::MAX), day, orders);
                }
                WorldEvent::AdvanceDay => self.day = day + 1,
            }
        }
        self.engine.apply_batch(engine_ops);
    }

    fn apply_rotation(&mut self, day: SimDate, store: StoreId, reactive: bool) {
        if self.stores.retired[store.index()] {
            return;
        }
        match self.stores.rotate_domain(store, day) {
            Some((from, to)) => {
                ss_obs::count!(self.metrics, "eco.store_rotations", 1, reactive = reactive);
                self.events.push(Event::StoreRotated {
                    store,
                    day,
                    from,
                    to,
                    reactive,
                });
            }
            None => {
                ss_obs::count!(self.metrics, "eco.stores_folded");
                // Pool exhausted: the store folds; its doorways re-point
                // to a sibling store in the same campaign if one lives.
                self.stores.retire(store);
                let campaign = self.stores.campaign[store.index()];
                let sibling = self
                    .campaigns
                    .row(campaign)
                    .stores
                    .iter()
                    .copied()
                    .find(|s| *s != store && !self.stores.retired[s.index()]);
                if let Some(sib) = sibling {
                    self.campaigns.repoint_doorways(campaign, store, sib);
                }
            }
        }
    }

    fn execute_case(
        &mut self,
        firm: FirmId,
        brand: BrandId,
        today: SimDate,
        domains: Vec<DomainId>,
    ) {
        let case = CaseId(self.next_case);
        self.next_case += 1;
        ss_obs::count!(self.metrics, "eco.seizure_cases");
        ss_obs::count!(self.metrics, "eco.domains_seized", domains.len());
        ss_obs::observe!(self.metrics, "eco.case_size", domains.len());
        for &d in &domains {
            self.domains.seize(
                d,
                Seizure {
                    day: today,
                    case,
                    firm,
                },
            );
            // Stores whose current domain was seized schedule a reactive
            // rotation after the campaign's reaction delay.
            if let SiteKind::Storefront { store } = self.domains.kind_of(d) {
                let si = store.index();
                if self.stores.current_domain[si] == d && !self.stores.retired[si] {
                    let delay = self.campaigns.row(self.stores.campaign[si]).reaction_days;
                    self.pending_rotations
                        .entry(today + delay)
                        .or_default()
                        .push(store);
                }
            }
        }
        let docket = self.firms[firm.index()].next_docket(today);
        self.firms[firm.index()].cases.push(CourtCase {
            id: case,
            firm,
            brand,
            docket,
            day: today,
            domains: domains.clone(),
        });
        self.events.push(Event::CaseFiled {
            firm,
            case,
            day: today,
            domains,
        });
    }
}

/// One (term, SERP slot) click outcome from the traffic planner's phase A.
struct TermClicks {
    store: StoreId,
    clicks: u64,
    referred: Option<(String, u64)>,
}

/// Runs `f(0..n)` on the tick worker pool (serial when `threads <= 1`),
/// returning results in index order regardless of completion order — the
/// same work-stealing-counter idiom as the crawler's vertical fan-out.
fn shard_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                slots.lock().expect("no worker panicked holding the lock")[i] = Some(out);
            });
        }
    })
    .expect("tick worker panicked");
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every shard produced output"))
        .collect()
}

/// Splits `0..n` into contiguous shard ranges sized for the worker pool
/// (a few shards per worker so stragglers rebalance).
fn shard_ranges(threads: usize, n: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let shards = if threads <= 1 {
        1
    } else {
        (threads * 4).min(n)
    };
    let chunk = n.div_ceil(shards);
    (0..shards)
        .map(|i| (i * chunk).min(n)..((i + 1) * chunk).min(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn run_world(threads: usize, seed: u64, until: u32) -> World {
        let mut w = World::build(ScenarioConfig::tiny(seed)).unwrap();
        w.tick_threads = threads;
        w.run_until(SimDate::from_day_index(until));
        w
    }

    #[test]
    fn world_is_bit_identical_across_tick_thread_counts() {
        // Past the firm cadence and the scripted day-219 seizure, so every
        // stage (penalties, cases, rotations, traffic) has fired.
        let until = 230;
        let base = run_world(1, 3, until);
        let fp = base.state_fingerprint();
        assert!(
            base.events.cases().count() > 0 && !base.supplier.records.is_empty(),
            "run too short to exercise the tick stages"
        );
        for threads in [2, 8] {
            let w = run_world(threads, 3, until);
            assert_eq!(
                w.events.all(),
                base.events.all(),
                "event log diverged at {threads} threads"
            );
            assert_eq!(
                w.metrics.metrics_json(),
                base.metrics.metrics_json(),
                "eco.* metrics diverged at {threads} threads"
            );
            assert_eq!(
                w.state_fingerprint(),
                fp,
                "world state diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn planners_are_pure_functions_of_world_state() {
        let w = run_world(1, 11, ss_types::CRAWL_START_DAY + 3);
        let today = w.day;
        for stage in TickStage::ALL {
            assert_eq!(
                w.plan_stage(stage, today),
                w.plan_stage(stage, today),
                "{} planner is not deterministic over frozen state",
                stage.name()
            );
        }
        // Planning must not have mutated anything.
        let fp = w.state_fingerprint();
        for stage in TickStage::ALL {
            let _ = w.plan_stage(stage, today);
        }
        assert_eq!(w.state_fingerprint(), fp);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for n in [0usize, 1, 5, 17, 100] {
                let ranges = shard_ranges(threads, n);
                let covered: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "{threads}/{n}");
            }
        }
    }

    #[test]
    fn shard_map_preserves_index_order() {
        let out = shard_map(4, 33, |i| i * 7);
        assert_eq!(out, (0..33).map(|i| i * 7).collect::<Vec<_>>());
    }
}

//! The ground-truth event log.
//!
//! The paper had to *infer* when labels appeared, when seizures happened,
//! and when campaigns re-pointed doorways, bounding each estimate between
//! crawl observations (§5.2.2, §5.3.2). The simulation knows these moments
//! exactly, so it records them — letting the methodology-validation
//! experiments compare the pipeline's inferred timelines against truth.

use ss_types::{CampaignId, CaseId, DomainId, FirmId, SimDate, StoreId};

/// One ground-truth event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A campaign entered an active SEO window.
    CampaignActive {
        /// Campaign.
        campaign: CampaignId,
        /// Window start.
        from: SimDate,
        /// Window end (inclusive).
        to: SimDate,
    },
    /// The search engine detected a doorway and penalized it.
    DoorwayPenalized {
        /// The doorway domain.
        domain: DomainId,
        /// Day the penalty/label landed.
        day: SimDate,
        /// Whether the hacked label was applied (vs. demotion only).
        labeled: bool,
    },
    /// A firm seized a batch of domains under one court case.
    CaseFiled {
        /// Executing firm.
        firm: FirmId,
        /// Case id.
        case: CaseId,
        /// Effective day.
        day: SimDate,
        /// Domains seized.
        domains: Vec<DomainId>,
    },
    /// A store rotated to a new domain.
    StoreRotated {
        /// The store.
        store: StoreId,
        /// Day of the switch.
        day: SimDate,
        /// Old domain.
        from: DomainId,
        /// New domain.
        to: DomainId,
        /// Whether this was a reaction to a seizure (vs. proactive).
        reactive: bool,
    },
}

/// Append-only event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// All events.
    pub fn all(&self) -> &[Event] {
        &self.events
    }

    /// All seizure cases.
    pub fn cases(&self) -> impl Iterator<Item = (&FirmId, &CaseId, &SimDate, &Vec<DomainId>)> {
        self.events.iter().filter_map(|e| match e {
            Event::CaseFiled {
                firm,
                case,
                day,
                domains,
            } => Some((firm, case, day, domains)),
            _ => None,
        })
    }

    /// Rotations for one store, in order.
    pub fn rotations_of(&self, store: StoreId) -> Vec<(&SimDate, &DomainId, &DomainId, bool)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::StoreRotated {
                    store: s,
                    day,
                    from,
                    to,
                    reactive,
                } if *s == store => Some((day, from, to, *reactive)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_filters_by_kind() {
        let mut log = EventLog::new();
        log.push(Event::CaseFiled {
            firm: FirmId(0),
            case: CaseId(1),
            day: SimDate::from_day_index(200),
            domains: vec![DomainId(5)],
        });
        log.push(Event::StoreRotated {
            store: StoreId(3),
            day: SimDate::from_day_index(205),
            from: DomainId(5),
            to: DomainId(9),
            reactive: true,
        });
        assert_eq!(log.cases().count(), 1);
        let rot = log.rotations_of(StoreId(3));
        assert_eq!(rot.len(), 1);
        assert!(rot[0].3);
        assert!(log.rotations_of(StoreId(4)).is_empty());
        assert_eq!(log.all().len(), 2);
    }
}

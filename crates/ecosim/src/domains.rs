//! The domain table: the simulated DNS plus per-domain site bindings,
//! stored struct-of-arrays like the rest of the entity plane.

use rand::Rng;
use ss_types::rng::SimRng;
use ss_types::{CampaignId, CaseId, DomainId, DomainName, FirmId, SimDate, StoreId};

use ss_web::cloak::CloakMode;
use ss_web::pagegen::legit::LegitTheme;

/// What a domain hosts. Small and `Copy` — it lives in a dense column and
/// is read by value on every fetch dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A legitimate site competing in organic results.
    Legit {
        /// Content theme.
        theme: LegitTheme,
        /// Brand the site's content centers on.
        brand: &'static str,
    },
    /// A doorway redirecting search traffic to a store.
    Doorway {
        /// Operating campaign.
        campaign: CampaignId,
        /// Whether this is a compromised innocent site (vs. attacker-owned).
        compromised: bool,
        /// Cloaking mechanism.
        cloak: CloakMode,
        /// The store the doorway currently targets (rotated on seizure).
        target_store: StoreId,
    },
    /// A counterfeit storefront (current or former domain of `store`).
    Storefront {
        /// The logical store.
        store: StoreId,
    },
    /// The supplier's order-tracking portal.
    Supplier,
    /// A storefront domain never surfaced via our monitored terms — the
    /// "offstage" bulk that court seizure schedules are full of.
    OffstageStore,
}

/// Seizure state of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seizure {
    /// Day the court order took effect.
    pub day: SimDate,
    /// Court case.
    pub case: CaseId,
    /// Executing firm.
    pub firm: FirmId,
}

/// Borrowed view of one registered domain. `Copy`; the kind is read by
/// value so `match rec.kind { … }` dispatch needs no clone.
#[derive(Debug, Clone, Copy)]
pub struct DomainRef<'a> {
    /// Id (row index).
    pub id: DomainId,
    /// The name.
    pub name: &'a DomainName,
    /// What it hosts.
    pub kind: SiteKind,
    /// Registration day.
    pub created: SimDate,
    /// Seizure, if any (a seized domain serves the notice page).
    pub seized: Option<Seizure>,
}

/// The domain table. Ids are dense row indices; each field is its own
/// column so hot paths (seizure checks, kind dispatch) touch only the
/// bytes they need. Lookups by name are hashed.
#[derive(Debug, Default)]
pub struct DomainTable {
    name: Vec<DomainName>,
    kind: Vec<SiteKind>,
    created: Vec<SimDate>,
    pub(crate) seized: Vec<Option<Seizure>>,
    by_name: std::collections::HashMap<DomainName, DomainId>,
}

impl DomainTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a domain; panics on duplicate names (world-generation bug).
    pub fn register(&mut self, name: DomainName, kind: SiteKind, created: SimDate) -> DomainId {
        let id = DomainId::from_index(self.name.len());
        let prev = self.by_name.insert(name.clone(), id);
        assert!(prev.is_none(), "duplicate domain registration: {name}");
        self.name.push(name);
        self.kind.push(kind);
        self.created.push(created);
        self.seized.push(None);
        id
    }

    /// Registers, appending a numeric suffix on collision (name generators
    /// can collide at scale; the web has no shortage of `-2` domains).
    pub fn register_unique(&mut self, base: &str, kind: SiteKind, created: SimDate) -> DomainId {
        if let Ok(name) = DomainName::parse(base) {
            if !self.by_name.contains_key(&name) {
                return self.register(name, kind, created);
            }
        }
        let (stem, tld) = base.rsplit_once('.').unwrap_or((base, "com"));
        for i in 2.. {
            let candidate = format!("{stem}-{i}.{tld}");
            if let Ok(name) = DomainName::parse(&candidate) {
                if !self.by_name.contains_key(&name) {
                    return self.register(name, kind, created);
                }
            }
        }
        unreachable!("suffix space is unbounded")
    }

    /// Looks up a domain id by name.
    pub fn lookup(&self, name: &DomainName) -> Option<DomainId> {
        self.by_name.get(name).copied()
    }

    /// Row view of `id`.
    pub fn get(&self, id: DomainId) -> DomainRef<'_> {
        let i = id.index();
        DomainRef {
            id,
            name: &self.name[i],
            kind: self.kind[i],
            created: self.created[i],
            seized: self.seized[i],
        }
    }

    /// The site kind column entry alone (hot-path dispatch).
    #[inline]
    pub(crate) fn kind_of(&self, id: DomainId) -> SiteKind {
        self.kind[id.index()]
    }

    /// The seizure column entry alone (hot-path checks touch one column
    /// instead of constructing a full [`DomainRef`]).
    #[inline]
    pub fn seizure_of(&self, id: DomainId) -> Option<Seizure> {
        self.seized[id.index()]
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.name.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.name.is_empty()
    }

    /// Iterates row views in id order.
    pub fn iter(&self) -> impl Iterator<Item = DomainRef<'_>> {
        (0..self.len()).map(|i| self.get(DomainId::from_index(i)))
    }

    /// Marks a domain seized (first writer wins).
    pub fn seize(&mut self, id: DomainId, seizure: Seizure) {
        self.seized[id.index()].get_or_insert(seizure);
    }
}

// ---- name generation ----

const LEGIT_STEMS: &[&str] = &[
    "daily", "north", "green", "river", "cedar", "sunny", "global", "metro", "prime", "bright",
    "summit", "harbor", "valley", "golden", "rapid", "silver", "stone", "maple", "crystal",
];
const LEGIT_TAILS: &[&str] = &[
    "news", "review", "journal", "blog", "times", "post", "shop", "market", "style", "life",
    "world", "report", "gazette", "digest", "weekly",
];
const STORE_ADJ: &[&str] = &[
    "cheap", "discount", "outlet", "vip", "best", "top", "luxe", "official", "mall", "super",
];
const TLDS: &[&str] = &["com", "net", "org", "biz", "info", "co"];

/// Generates a legitimate-looking domain name.
pub fn legit_name(rng: &mut SimRng) -> String {
    format!(
        "{}{}{}.{}",
        LEGIT_STEMS[rng.gen_range(0..LEGIT_STEMS.len())],
        LEGIT_TAILS[rng.gen_range(0..LEGIT_TAILS.len())],
        rng.gen_range(0..100),
        TLDS[rng.gen_range(0..TLDS.len())],
    )
}

/// Generates a compromised-doorway name (an innocent site's name).
pub fn doorway_name(rng: &mut SimRng) -> String {
    format!(
        "{}-{}{}.{}",
        LEGIT_STEMS[rng.gen_range(0..LEGIT_STEMS.len())],
        LEGIT_TAILS[rng.gen_range(0..LEGIT_TAILS.len())],
        rng.gen_range(0..1000),
        TLDS[rng.gen_range(0..TLDS.len())],
    )
}

/// Generates a storefront name shilling `brand`.
pub fn store_name(rng: &mut SimRng, brand: &str) -> String {
    let slug: String = brand
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    format!(
        "{}-{}-{}{}.{}",
        STORE_ADJ[rng.gen_range(0..STORE_ADJ.len())],
        slug,
        ["store", "outlet", "shop", "sale", "online"][rng.gen_range(0..5)],
        rng.gen_range(0..100),
        TLDS[rng.gen_range(0..TLDS.len())],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::rng::sub_rng;

    fn day0() -> SimDate {
        SimDate::EPOCH
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = DomainTable::new();
        let name = DomainName::parse("example.com").unwrap();
        let id = reg.register(name.clone(), SiteKind::Supplier, day0());
        assert_eq!(reg.lookup(&name), Some(id));
        assert_eq!(reg.get(id).kind, SiteKind::Supplier);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn register_unique_suffixes_on_collision() {
        let mut reg = DomainTable::new();
        let a = reg.register_unique("shop.com", SiteKind::OffstageStore, day0());
        let b = reg.register_unique("shop.com", SiteKind::OffstageStore, day0());
        assert_ne!(a, b);
        assert_eq!(reg.get(b).name.as_str(), "shop-2.com");
        let c = reg.register_unique("shop.com", SiteKind::OffstageStore, day0());
        assert_eq!(reg.get(c).name.as_str(), "shop-3.com");
    }

    #[test]
    #[should_panic(expected = "duplicate domain registration")]
    fn duplicate_register_panics() {
        let mut reg = DomainTable::new();
        let name = DomainName::parse("dup.com").unwrap();
        reg.register(name.clone(), SiteKind::Supplier, day0());
        reg.register(name, SiteKind::Supplier, day0());
    }

    #[test]
    fn seizure_is_first_writer_wins() {
        let mut reg = DomainTable::new();
        let id = reg.register(
            DomainName::parse("s.com").unwrap(),
            SiteKind::OffstageStore,
            day0(),
        );
        let first = Seizure {
            day: SimDate::from_day_index(10),
            case: CaseId(1),
            firm: FirmId(0),
        };
        reg.seize(id, first);
        reg.seize(
            id,
            Seizure {
                day: SimDate::from_day_index(99),
                case: CaseId(2),
                firm: FirmId(1),
            },
        );
        assert_eq!(reg.get(id).seized, Some(first));
    }

    #[test]
    fn generated_names_parse() {
        let mut rng = sub_rng(1, "names");
        for _ in 0..200 {
            DomainName::parse(&legit_name(&mut rng)).unwrap();
            DomainName::parse(&doorway_name(&mut rng)).unwrap();
            DomainName::parse(&store_name(&mut rng, "Louis Vuitton")).unwrap();
        }
    }

    #[test]
    fn store_names_embed_brand_slug() {
        let mut rng = sub_rng(2, "names");
        assert!(store_name(&mut rng, "Beats By Dre").contains("beatsbydre"));
    }
}

//! Component tables: struct-of-arrays storage for the world's entities.
//!
//! The entity plane mirrors what the crawl database does for PSRs with
//! `PsrStore`: one typed column per field, dense ids as row indices, and
//! two access disciplines layered on top:
//!
//! * **Row views** ([`StoreRow`], [`CampaignRow`], [`DoorwayRow`]) — cheap
//!   `Copy` structs of column references, built on demand. Use these
//!   everywhere ergonomics matter: report paths, analysis accessors,
//!   tests. Strings stay borrowed; nothing is cloned until a report
//!   boundary actually needs an owned value.
//! * **Columnar scans** — the tick planners in [`crate::plan`] iterate the
//!   raw columns (`pub(crate)`) directly, touching only the fields a scan
//!   needs. A seizure scan reads four columns of a few bytes each instead
//!   of walking whole nested structs.
//!
//! The nested structs ([`StoreState`], [`crate::campaign::CampaignState`],
//! [`crate::campaign::DoorwayState`]) survive as *builder/materialized*
//! forms: world generation constructs them (preserving the seeded RNG draw
//! order exactly), `push` destructures them into columns, and
//! `materialize` reassembles them for round-trip tests and benchmarks.
//!
//! Id discipline: `StoreId`, `CampaignId`, `DoorwayId` and `DomainId` are
//! dense indices into their tables. Doorways live in one global
//! [`DoorwayTable`] owned by the [`CampaignTable`]; each campaign's fleet
//! is a contiguous row range (world generation builds one campaign at a
//! time), so a campaign's doorways are a [`DoorwaySlice`] — two ints —
//! and a domain routes to its doorway through [`DomainRoute`], a dense
//! `Vec` lookup instead of a `HashMap`.

use ss_types::{
    BrandId, CampaignId, DomainId, DoorwayId, Interner, LocaleId, SimDate, StoreId, TermId,
    VerticalId,
};
use ss_web::cloak::CloakMode;

use crate::campaign::{ActivityWindow, CampaignState, DoorwayState};
use crate::store::{MonthStats, StoreState};

// ---- stores ----

/// Struct-of-arrays storage for every store in the world.
///
/// Fixed-at-creation, fixed-width fields are plain columns; per-store
/// growable collections (domain history, backup pool, AWStats months) are
/// `Vec<Vec<…>>` columns; brand portfolios are flattened into one arena
/// with prefix offsets; locales are interned into a shared table and
/// stored as a [`LocaleId`] column.
#[derive(Debug, Default)]
pub struct StoreTable {
    pub(crate) campaign: Vec<CampaignId>,
    name: Vec<String>,
    /// Flattened brand portfolios; store `i` owns
    /// `brands[brands_off[i] as usize..brands_off[i + 1] as usize]`.
    brands: Vec<BrandId>,
    brands_off: Vec<u32>,
    pub(crate) locale: Vec<LocaleId>,
    locales: Interner,
    pub(crate) current_domain: Vec<DomainId>,
    pub(crate) domain_history: Vec<Vec<(SimDate, DomainId)>>,
    backup_pool: Vec<Vec<DomainId>>,
    pub(crate) order_counter: Vec<u64>,
    orders_accrued: Vec<u64>,
    merchant_id: Vec<String>,
    awstats_public: Vec<bool>,
    pub(crate) created: Vec<SimDate>,
    months: Vec<Vec<MonthStats>>,
    seed: Vec<u64>,
    pub(crate) retired: Vec<bool>,
}

/// Borrowed view of one store row. `Copy`; strings resolve to `&str` at
/// view construction and are cloned only where a report boundary needs an
/// owned value.
#[derive(Debug, Clone, Copy)]
pub struct StoreRow<'a> {
    /// Id (row index).
    pub id: StoreId,
    /// Operating campaign.
    pub campaign: CampaignId,
    /// Display name.
    pub name: &'a str,
    /// Brands on sale.
    pub brands: &'a [BrandId],
    /// Locale ("us", "uk", …), resolved from the shared intern table.
    pub locale: &'a str,
    /// Interned locale id.
    pub locale_id: LocaleId,
    /// Current serving domain.
    pub current_domain: DomainId,
    /// Full domain history `(first_day, domain)`, current last.
    pub domain_history: &'a [(SimDate, DomainId)],
    /// Backup domains not yet used.
    pub backup_pool: &'a [DomainId],
    /// Monotone order counter.
    pub order_counter: u64,
    /// Orders accrued during the simulation.
    pub orders_accrued: u64,
    /// Merchant id with the payment processor.
    pub merchant_id: &'a str,
    /// Whether the AWStats report is publicly reachable.
    pub awstats_public: bool,
    /// Day the store went live.
    pub created: SimDate,
    /// Monthly traffic stats, newest last.
    pub months: &'a [MonthStats],
    /// Per-store render seed.
    pub seed: u64,
    /// Whether the campaign has stopped operating this store.
    pub retired: bool,
}

impl StoreRow<'_> {
    /// The monthly bucket covering `day`, if recorded.
    pub fn month_for(&self, day: SimDate) -> Option<&MonthStats> {
        let (y, m, _) = day.ymd();
        self.months.iter().find(|b| b.year_month == (y, m))
    }
}

impl StoreTable {
    /// Number of stores.
    pub fn len(&self) -> usize {
        self.campaign.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.campaign.is_empty()
    }

    /// Appends a store built as a nested [`StoreState`], destructuring it
    /// into columns. The state's `id` must equal the next row index.
    pub fn push(&mut self, s: StoreState) -> StoreId {
        assert_eq!(s.id.index(), self.len(), "store ids are dense");
        if self.brands_off.is_empty() {
            self.brands_off.push(0);
        }
        self.campaign.push(s.campaign);
        self.name.push(s.name);
        self.brands.extend_from_slice(&s.brands);
        self.brands_off.push(self.brands.len() as u32);
        self.locale.push(LocaleId(self.locales.intern(&s.locale)));
        self.current_domain.push(s.current_domain);
        self.domain_history.push(s.domain_history);
        self.backup_pool.push(s.backup_pool);
        self.order_counter.push(s.order_counter);
        self.orders_accrued.push(s.orders_accrued);
        self.merchant_id.push(s.merchant_id);
        self.awstats_public.push(s.awstats_public);
        self.created.push(s.created);
        self.months.push(s.months);
        self.seed.push(s.seed);
        self.retired.push(s.retired);
        s.id
    }

    /// Borrowed view of row `id`.
    pub fn row(&self, id: StoreId) -> StoreRow<'_> {
        self.get(id.index())
    }

    /// Borrowed view of raw row index `i`.
    pub fn get(&self, i: usize) -> StoreRow<'_> {
        StoreRow {
            id: StoreId::from_index(i),
            campaign: self.campaign[i],
            name: &self.name[i],
            brands: self.brands_of(i),
            locale: self.locales.resolve(self.locale[i].0),
            locale_id: self.locale[i],
            current_domain: self.current_domain[i],
            domain_history: &self.domain_history[i],
            backup_pool: &self.backup_pool[i],
            order_counter: self.order_counter[i],
            orders_accrued: self.orders_accrued[i],
            merchant_id: &self.merchant_id[i],
            awstats_public: self.awstats_public[i],
            created: self.created[i],
            months: &self.months[i],
            seed: self.seed[i],
            retired: self.retired[i],
        }
    }

    /// Iterates row views in id order.
    pub fn iter(&self) -> impl Iterator<Item = StoreRow<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The `retired` column (columnar-scan access: planners and benches
    /// read whole columns instead of constructing row views per store).
    pub fn retired_col(&self) -> &[bool] {
        &self.retired
    }

    /// The `created` column (columnar-scan access).
    pub fn created_col(&self) -> &[SimDate] {
        &self.created
    }

    /// The `current_domain` column (columnar-scan access).
    pub fn current_domain_col(&self) -> &[DomainId] {
        &self.current_domain
    }

    /// The `order_counter` column (columnar-scan access).
    pub fn order_counter_col(&self) -> &[u64] {
        &self.order_counter
    }

    /// Brand portfolio of raw row `i` (columnar-scan access).
    pub(crate) fn brands_of(&self, i: usize) -> &[BrandId] {
        &self.brands[self.brands_off[i] as usize..self.brands_off[i + 1] as usize]
    }

    /// The shared locale intern table.
    pub fn locales(&self) -> &Interner {
        &self.locales
    }

    /// Reassembles the nested form of row `id` (round-trip tests, the
    /// nested-vs-columnar benchmark baseline).
    pub fn materialize(&self, id: StoreId) -> StoreState {
        let r = self.row(id);
        StoreState {
            id: r.id,
            campaign: r.campaign,
            name: r.name.to_owned(),
            brands: r.brands.to_vec(),
            locale: r.locale.to_owned(),
            current_domain: r.current_domain,
            domain_history: r.domain_history.to_vec(),
            backup_pool: r.backup_pool.to_vec(),
            order_counter: r.order_counter,
            orders_accrued: r.orders_accrued,
            merchant_id: r.merchant_id.to_owned(),
            awstats_public: r.awstats_public,
            created: r.created,
            months: r.months.to_vec(),
            seed: r.seed,
            retired: r.retired,
        }
    }

    // ---- mutators (the apply-plan choke points) ----

    /// Allocates the next order number (monotonically increasing — the
    /// invariant the purchase-pair technique rests on).
    pub fn allocate_order(&mut self, id: StoreId) -> u64 {
        let i = id.index();
        self.order_counter[i] += 1;
        self.orders_accrued[i] += 1;
        self.order_counter[i]
    }

    /// Bulk-advances the counter by `n` customer orders.
    pub fn add_orders(&mut self, id: StoreId, n: u64) {
        let i = id.index();
        self.order_counter[i] += n;
        self.orders_accrued[i] += n;
    }

    /// Records a day of traffic into the right monthly bucket.
    pub fn record_traffic(
        &mut self,
        id: StoreId,
        day: SimDate,
        visits: u64,
        pages: u64,
        referred: &[(String, u64)],
        direct: u64,
    ) {
        let months = &mut self.months[id.index()];
        let (y, m, _) = day.ymd();
        if months.last().map(|b| b.year_month) != Some((y, m)) {
            months.push(MonthStats {
                year_month: (y, m),
                ..MonthStats::default()
            });
        }
        let bucket = months.last_mut().expect("just ensured");
        bucket.visits += visits;
        bucket.pages += pages;
        bucket.direct_visits += direct;
        for (host, n) in referred {
            bucket.add_referrer(host, *n);
        }
        bucket.daily.push((day, visits, pages));
    }

    /// Rotates to the next backup domain; returns `(old, new)` if a backup
    /// was available.
    pub fn rotate_domain(&mut self, id: StoreId, day: SimDate) -> Option<(DomainId, DomainId)> {
        let i = id.index();
        if self.backup_pool[i].is_empty() {
            return None;
        }
        let next = self.backup_pool[i].remove(0);
        let old = self.current_domain[i];
        self.current_domain[i] = next;
        self.domain_history[i].push((day, next));
        Some((old, next))
    }

    /// Marks the store retired.
    pub fn retire(&mut self, id: StoreId) {
        self.retired[id.index()] = true;
    }

    /// Scripted-beat override: exposes the AWStats report.
    pub fn set_awstats_public(&mut self, id: StoreId, public: bool) {
        self.awstats_public[id.index()] = public;
    }

    /// Scripted-beat override: renames the store.
    pub fn set_name(&mut self, id: StoreId, name: &str) {
        self.name[id.index()] = name.to_owned();
    }

    /// Scripted-beat override: re-localizes the store.
    pub fn set_locale(&mut self, id: StoreId, locale: &str) {
        self.locale[id.index()] = LocaleId(self.locales.intern(locale));
    }
}

// ---- doorways ----

/// Struct-of-arrays storage for every doorway in the world, owned by the
/// [`CampaignTable`]. Rows are contiguous per campaign, in build order.
#[derive(Debug, Default)]
pub struct DoorwayTable {
    pub(crate) campaign: Vec<CampaignId>,
    pub(crate) domain: Vec<DomainId>,
    pub(crate) vertical: Vec<VerticalId>,
    pub(crate) target_store: Vec<StoreId>,
    pub(crate) live_from: Vec<SimDate>,
    pub(crate) live_until: Vec<SimDate>,
    pub(crate) penalized: Vec<Option<SimDate>>,
    /// Flattened term targets; doorway `i` owns
    /// `terms[terms_off[i] as usize..terms_off[i + 1] as usize]`.
    terms: Vec<TermId>,
    terms_off: Vec<u32>,
}

/// Borrowed view of one doorway row.
#[derive(Debug, Clone, Copy)]
pub struct DoorwayRow<'a> {
    /// Id (row index in the global doorway table).
    pub id: DoorwayId,
    /// Operating campaign.
    pub campaign: CampaignId,
    /// The doorway's domain.
    pub domain: DomainId,
    /// Terms it targets (each indexed as a separate page).
    pub terms: &'a [TermId],
    /// Vertical the terms belong to.
    pub vertical: VerticalId,
    /// The store it funnels to (updated on rotation).
    pub target_store: StoreId,
    /// Day it was compromised / registered and SEO started.
    pub live_from: SimDate,
    /// Day it stops redirecting (cohort retirement), exclusive.
    pub live_until: SimDate,
    /// Whether the search engine has penalized it, and when.
    pub penalized: Option<SimDate>,
}

impl DoorwayRow<'_> {
    /// Whether the doorway actively serves the campaign on `day`.
    pub fn is_live(&self, day: SimDate) -> bool {
        self.live_from <= day && day < self.live_until
    }
}

impl DoorwayTable {
    /// Number of doorways (across all campaigns).
    pub fn len(&self) -> usize {
        self.domain.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.domain.is_empty()
    }

    /// Borrowed view of row `id`.
    pub fn row(&self, id: DoorwayId) -> DoorwayRow<'_> {
        self.get(id.index())
    }

    /// Borrowed view of raw row index `i`.
    pub fn get(&self, i: usize) -> DoorwayRow<'_> {
        DoorwayRow {
            id: DoorwayId::from_index(i),
            campaign: self.campaign[i],
            domain: self.domain[i],
            terms: &self.terms[self.terms_off[i] as usize..self.terms_off[i + 1] as usize],
            vertical: self.vertical[i],
            target_store: self.target_store[i],
            live_from: self.live_from[i],
            live_until: self.live_until[i],
            penalized: self.penalized[i],
        }
    }

    /// Columnar liveness check for raw row `i` (hot-path scans).
    pub(crate) fn is_live_at(&self, i: usize, day: SimDate) -> bool {
        self.live_from[i] <= day && day < self.live_until[i]
    }

    fn push(&mut self, campaign: CampaignId, d: DoorwayState) -> DoorwayId {
        if self.terms_off.is_empty() {
            self.terms_off.push(0);
        }
        let id = DoorwayId::from_index(self.len());
        self.campaign.push(campaign);
        self.domain.push(d.domain);
        self.vertical.push(d.vertical);
        self.target_store.push(d.target_store);
        self.live_from.push(d.live_from);
        self.live_until.push(d.live_until);
        self.penalized.push(d.penalized);
        self.terms.extend_from_slice(&d.terms);
        self.terms_off.push(self.terms.len() as u32);
        id
    }
}

/// One campaign's contiguous doorway range — a borrowed, `Copy` window
/// into the global [`DoorwayTable`].
#[derive(Debug, Clone, Copy)]
pub struct DoorwaySlice<'a> {
    table: &'a DoorwayTable,
    start: u32,
    end: u32,
}

impl<'a> DoorwaySlice<'a> {
    /// Number of doorways in the fleet.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the fleet is empty.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Iterates the fleet's row views in build order.
    pub fn iter(self) -> impl Iterator<Item = DoorwayRow<'a>> {
        (self.start as usize..self.end as usize).map(|i| self.table.get(i))
    }

    /// Row view of the `i`-th doorway of the fleet.
    pub fn at(self, i: usize) -> DoorwayRow<'a> {
        assert!(i < self.len(), "doorway index {i} out of fleet bounds");
        self.table.get(self.start as usize + i)
    }
}

// ---- campaigns ----

/// Struct-of-arrays storage for every campaign, owning the global
/// [`DoorwayTable`].
#[derive(Debug, Default)]
pub struct CampaignTable {
    name: Vec<String>,
    classified: Vec<bool>,
    verticals: Vec<Vec<VerticalId>>,
    stores: Vec<Vec<StoreId>>,
    cloak: Vec<CloakMode>,
    windows: Vec<Vec<ActivityWindow>>,
    reaction_days: Vec<u32>,
    supplier_partner: Vec<bool>,
    /// Per-campaign `[start, end)` row range in the doorway table.
    doorway_start: Vec<u32>,
    doorway_end: Vec<u32>,
    pub(crate) doorways: DoorwayTable,
}

/// Borrowed view of one campaign row.
#[derive(Debug, Clone, Copy)]
pub struct CampaignRow<'a> {
    /// Id (row index).
    pub id: CampaignId,
    /// Table 2 name, or `SHADOW.n` for the unclassified tail.
    pub name: &'a str,
    /// Whether the campaign is in the 52-campaign classified universe.
    pub classified: bool,
    /// Verticals targeted.
    pub verticals: &'a [VerticalId],
    /// Store fleet.
    pub stores: &'a [StoreId],
    /// Cloaking mechanism used by this campaign's kit.
    pub cloak: CloakMode,
    /// Activity schedule (non-overlapping, ordered).
    pub windows: &'a [ActivityWindow],
    /// Days the campaign takes to re-point doorways after a store seizure.
    pub reaction_days: u32,
    /// Whether the campaign partners with the tracked supplier.
    pub supplier_partner: bool,
    /// Doorway fleet (all cohorts, live and retired).
    pub doorways: DoorwaySlice<'a>,
}

impl CampaignRow<'_> {
    /// Juice level on `day` (0 outside all windows). Overlapping windows
    /// combine by maximum.
    pub fn juice_on(&self, day: SimDate) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(day))
            .map(|w| w.juice)
            .fold(0.0, f64::max)
    }

    /// Whether the campaign is actively SEOing on `day`.
    pub fn is_active(&self, day: SimDate) -> bool {
        self.juice_on(day) > 0.0
    }
}

impl CampaignTable {
    /// Number of campaigns.
    pub fn len(&self) -> usize {
        self.name.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.name.is_empty()
    }

    /// Appends a campaign built as a nested [`CampaignState`]. The state's
    /// `id` must equal the next row index and its doorway fleet must be
    /// empty — doorways are appended through [`CampaignTable::push_doorway`]
    /// so each campaign's fleet stays a contiguous range.
    pub fn push(&mut self, c: CampaignState) -> CampaignId {
        assert_eq!(c.id.index(), self.len(), "campaign ids are dense");
        assert!(
            c.doorways.is_empty(),
            "doorways are pushed through push_doorway, not carried in"
        );
        self.name.push(c.name);
        self.classified.push(c.classified);
        self.verticals.push(c.verticals);
        self.stores.push(c.stores);
        self.cloak.push(c.cloak);
        self.windows.push(c.windows);
        self.reaction_days.push(c.reaction_days);
        self.supplier_partner.push(c.supplier_partner);
        let n = self.doorways.len() as u32;
        self.doorway_start.push(n);
        self.doorway_end.push(n);
        c.id
    }

    /// Borrowed view of row `id`.
    pub fn row(&self, id: CampaignId) -> CampaignRow<'_> {
        self.get(id.index()).expect("campaign id in range")
    }

    /// Borrowed view of raw row index `i`, if in range.
    pub fn get(&self, i: usize) -> Option<CampaignRow<'_>> {
        if i >= self.len() {
            return None;
        }
        Some(CampaignRow {
            id: CampaignId::from_index(i),
            name: &self.name[i],
            classified: self.classified[i],
            verticals: &self.verticals[i],
            stores: &self.stores[i],
            cloak: self.cloak[i],
            windows: &self.windows[i],
            reaction_days: self.reaction_days[i],
            supplier_partner: self.supplier_partner[i],
            doorways: DoorwaySlice {
                table: &self.doorways,
                start: self.doorway_start[i],
                end: self.doorway_end[i],
            },
        })
    }

    /// Iterates row views in id order.
    pub fn iter(&self) -> impl Iterator<Item = CampaignRow<'_>> {
        (0..self.len()).map(|i| self.get(i).expect("index in range"))
    }

    /// The global doorway table (columnar-scan access for planners).
    pub fn doorway_table(&self) -> &DoorwayTable {
        &self.doorways
    }

    /// Row view of one doorway by global id.
    pub fn doorway(&self, id: DoorwayId) -> DoorwayRow<'_> {
        self.doorways.row(id)
    }

    /// Campaign `id`'s doorway rows as raw range bounds (columnar scans).
    pub(crate) fn doorway_range(&self, i: usize) -> std::ops::Range<usize> {
        self.doorway_start[i] as usize..self.doorway_end[i] as usize
    }

    /// Adds a store to campaign `id`'s fleet.
    pub fn add_store(&mut self, id: CampaignId, store: StoreId) {
        self.stores[id.index()].push(store);
    }

    /// Appends a doorway to campaign `id`'s fleet. Only the campaign with
    /// the last fleet range may grow (world generation builds one campaign
    /// at a time), which keeps every fleet contiguous.
    pub fn push_doorway(&mut self, id: CampaignId, d: DoorwayState) -> DoorwayId {
        let i = id.index();
        assert_eq!(
            self.doorway_end[i],
            self.doorways.len() as u32,
            "campaign {i} is not the tail of the doorway table"
        );
        let did = self.doorways.push(id, d);
        self.doorway_end[i] += 1;
        did
    }

    /// Marks a doorway penalized on `day` (first writer wins).
    pub fn penalize_doorway(&mut self, id: DoorwayId, day: SimDate) {
        self.doorways.penalized[id.index()] = Some(day);
    }

    /// Re-points every doorway of campaign `id` currently targeting `from`
    /// to `to` (the §5.3.2 counter-move); returns how many moved.
    pub fn repoint_doorways(&mut self, id: CampaignId, from: StoreId, to: StoreId) -> usize {
        let range = self.doorway_range(id.index());
        let mut n = 0;
        for t in &mut self.doorways.target_store[range] {
            if *t == from {
                *t = to;
                n += 1;
            }
        }
        n
    }

    /// Juice level of campaign at raw row `i` on `day` (columnar scans).
    pub(crate) fn juice_on_at(&self, i: usize, day: SimDate) -> f64 {
        self.windows[i]
            .iter()
            .filter(|w| w.contains(day))
            .map(|w| w.juice)
            .fold(0.0, f64::max)
    }

    /// Reassembles the nested form of campaign `id` (round-trip tests).
    pub fn materialize(&self, id: CampaignId) -> CampaignState {
        let r = self.row(id);
        CampaignState {
            id: r.id,
            name: r.name.to_owned(),
            classified: r.classified,
            verticals: r.verticals.to_vec(),
            doorways: r
                .doorways
                .iter()
                .map(|d| DoorwayState {
                    domain: d.domain,
                    terms: d.terms.to_vec(),
                    vertical: d.vertical,
                    target_store: d.target_store,
                    live_from: d.live_from,
                    live_until: d.live_until,
                    penalized: d.penalized,
                })
                .collect(),
            stores: r.stores.to_vec(),
            cloak: r.cloak,
            windows: r.windows.to_vec(),
            reaction_days: r.reaction_days,
            supplier_partner: r.supplier_partner,
        }
    }
}

// ---- routing ----

/// Dense domain → doorway routing: a `Vec` indexed by `DomainId` (domain
/// ids are dense), `u32::MAX` marking non-doorway domains. Replaces the
/// former `HashMap<DomainId, (usize, usize)>` — fetch routing and the
/// per-SERP-slot planner probe become a branchless array lookup.
#[derive(Debug, Default)]
pub struct DomainRoute {
    to_doorway: Vec<u32>,
}

/// Route sentinel: "this domain is not a doorway".
const NO_DOORWAY: u32 = u32::MAX;

impl DomainRoute {
    /// Routes `domain` to `doorway`.
    pub fn set(&mut self, domain: DomainId, doorway: DoorwayId) {
        let i = domain.index();
        if i >= self.to_doorway.len() {
            self.to_doorway.resize(i + 1, NO_DOORWAY);
        }
        self.to_doorway[i] = doorway.0;
    }

    /// The doorway serving on `domain`, if any. Out-of-range ids (domains
    /// registered after the last doorway, e.g. bulk seizure filler) are
    /// simply not doorways.
    #[inline]
    pub fn doorway(&self, domain: DomainId) -> Option<DoorwayId> {
        match self.to_doorway.get(domain.index()) {
            Some(&d) if d != NO_DOORWAY => Some(DoorwayId(d)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    fn sample_store(i: usize, campaign: u32) -> StoreState {
        StoreState {
            id: StoreId::from_index(i),
            campaign: CampaignId(campaign),
            name: format!("store {i}"),
            brands: vec![BrandId(i as u32), BrandId(7)],
            locale: if i.is_multiple_of(2) {
                "us".into()
            } else {
                "uk".into()
            },
            current_domain: DomainId(10 + i as u32),
            domain_history: vec![(day(5), DomainId(10 + i as u32))],
            backup_pool: vec![DomainId(100 + i as u32)],
            order_counter: 2_000 + i as u64,
            orders_accrued: 0,
            merchant_id: format!("m-{i}"),
            awstats_public: i == 0,
            created: day(5),
            months: Vec::new(),
            seed: 42 + i as u64,
            retired: false,
        }
    }

    #[test]
    fn store_push_materialize_roundtrips() {
        let mut t = StoreTable::default();
        for i in 0..4 {
            t.push(sample_store(i, 1));
        }
        assert_eq!(t.len(), 4);
        // Locales interned: two distinct strings across four stores.
        assert_eq!(t.locales().len(), 2);
        for i in 0..4 {
            let m = t.materialize(StoreId::from_index(i));
            let expect = sample_store(i, 1);
            assert_eq!(m.name, expect.name);
            assert_eq!(m.brands, expect.brands);
            assert_eq!(m.locale, expect.locale);
            assert_eq!(m.backup_pool, expect.backup_pool);
            assert_eq!(m.order_counter, expect.order_counter);
        }
    }

    #[test]
    fn store_mutators_match_nested_semantics() {
        let mut t = StoreTable::default();
        let id = t.push(sample_store(0, 0));
        let mut nested = sample_store(0, 0);

        assert_eq!(t.allocate_order(id), nested.allocate_order());
        t.add_orders(id, 10);
        nested.add_orders(10);
        t.record_traffic(id, day(30), 100, 560, &[("g.com".into(), 40)], 60);
        nested.record_traffic(day(30), 100, 560, &[("g.com".into(), 40)], 60);
        assert_eq!(t.rotate_domain(id, day(40)), nested.rotate_domain(day(40)));
        assert_eq!(t.rotate_domain(id, day(50)), nested.rotate_domain(day(50)));

        let m = t.materialize(id);
        assert_eq!(m.order_counter, nested.order_counter);
        assert_eq!(m.orders_accrued, nested.orders_accrued);
        assert_eq!(m.months, nested.months);
        assert_eq!(m.current_domain, nested.current_domain);
        assert_eq!(m.domain_history, nested.domain_history);
        assert_eq!(m.backup_pool, nested.backup_pool);
    }

    fn sample_campaign(i: usize) -> CampaignState {
        CampaignState {
            id: CampaignId::from_index(i),
            name: format!("C{i}"),
            classified: i == 0,
            verticals: vec![VerticalId(0)],
            doorways: Vec::new(),
            stores: vec![StoreId(i as u32)],
            cloak: CloakMode::Redirect,
            windows: vec![ActivityWindow {
                from: day(100),
                to: day(200),
                juice: 0.5,
            }],
            reaction_days: 7,
            supplier_partner: false,
        }
    }

    fn sample_doorway(k: u32, store: u32) -> DoorwayState {
        DoorwayState {
            domain: DomainId(500 + k),
            terms: vec![TermId(k), TermId(k + 1)],
            vertical: VerticalId(0),
            target_store: StoreId(store),
            live_from: day(100 + k),
            live_until: day(300),
            penalized: None,
        }
    }

    #[test]
    fn campaign_fleets_stay_contiguous_and_roundtrip() {
        let mut t = CampaignTable::default();
        let a = t.push(sample_campaign(0));
        for k in 0..3 {
            t.push_doorway(a, sample_doorway(k, 0));
        }
        let b = t.push(sample_campaign(1));
        t.push_doorway(b, sample_doorway(10, 1));

        assert_eq!(t.row(a).doorways.len(), 3);
        assert_eq!(t.row(b).doorways.len(), 1);
        assert_eq!(t.row(b).doorways.at(0).domain, DomainId(510));
        assert_eq!(t.doorway_table().len(), 4);
        // Global ids are per-campaign contiguous.
        let ids: Vec<u32> = t.row(a).doorways.iter().map(|d| d.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);

        let m = t.materialize(a);
        assert_eq!(m.doorways.len(), 3);
        assert_eq!(m.doorways[2].terms, vec![TermId(2), TermId(3)]);
        assert_eq!(m.juice_on(day(150)), t.row(a).juice_on(day(150)));
    }

    #[test]
    #[should_panic(expected = "not the tail")]
    fn out_of_order_doorway_push_panics() {
        let mut t = CampaignTable::default();
        let a = t.push(sample_campaign(0));
        let b = t.push(sample_campaign(1));
        t.push_doorway(b, sample_doorway(0, 1));
        t.push_doorway(a, sample_doorway(1, 0));
    }

    #[test]
    fn repoint_moves_only_matching_doorways() {
        let mut t = CampaignTable::default();
        let a = t.push(sample_campaign(0));
        t.push_doorway(a, sample_doorway(0, 0));
        t.push_doorway(a, sample_doorway(1, 1));
        let moved = t.repoint_doorways(a, StoreId(0), StoreId(5));
        assert_eq!(moved, 1);
        assert_eq!(t.row(a).doorways.at(0).target_store, StoreId(5));
        assert_eq!(t.row(a).doorways.at(1).target_store, StoreId(1));
    }

    #[test]
    fn route_is_dense_and_total() {
        let mut r = DomainRoute::default();
        r.set(DomainId(5), DoorwayId(2));
        assert_eq!(r.doorway(DomainId(5)), Some(DoorwayId(2)));
        assert_eq!(r.doorway(DomainId(4)), None);
        // Beyond the table: late-registered bulk domains are not doorways.
        assert_eq!(r.doorway(DomainId(1_000_000)), None);
    }
}

//! SEO-campaign agents: doorway fleets, activity schedules, agility.

use ss_types::{CampaignId, DomainId, SimDate, StoreId, TermId, VerticalId};
use ss_web::cloak::CloakMode;

/// One doorway operated by a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct DoorwayState {
    /// The doorway's domain.
    pub domain: DomainId,
    /// Terms it targets (each indexed as a separate page).
    pub terms: Vec<TermId>,
    /// Vertical the terms belong to.
    pub vertical: VerticalId,
    /// The store it funnels to (updated on rotation).
    pub target_store: StoreId,
    /// Day it was compromised / registered and SEO started.
    pub live_from: SimDate,
    /// Day it stops redirecting (cohort retirement), exclusive.
    pub live_until: SimDate,
    /// Whether the search engine has penalized it, and when.
    pub penalized: Option<SimDate>,
}

impl DoorwayState {
    /// Whether the doorway actively serves the campaign on `day`.
    pub fn is_live(&self, day: SimDate) -> bool {
        self.live_from <= day && day < self.live_until
    }
}

/// An SEO activity window with an intensity level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityWindow {
    /// First day.
    pub from: SimDate,
    /// Last day, inclusive.
    pub to: SimDate,
    /// Juice injected per live doorway domain during the window. Higher
    /// juice reaches higher ranks; ~0.28 parks results in the top-100 tail
    /// without cracking the top 10 (the MOONKIS March pattern, §5.2.1).
    pub juice: f64,
}

impl ActivityWindow {
    /// Whether `day` falls inside the window.
    pub fn contains(self, day: SimDate) -> bool {
        self.from <= day && day <= self.to
    }
}

/// A campaign agent.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignState {
    /// Id (index into the world's campaign table).
    pub id: CampaignId,
    /// Table 2 name, or `SHADOW.n` for the unclassified tail.
    pub name: String,
    /// Whether the campaign is in the 52-campaign classified universe
    /// (false for the shadow tail the labeled set never covers).
    pub classified: bool,
    /// Verticals targeted.
    pub verticals: Vec<VerticalId>,
    /// Doorway fleet (all cohorts, live and retired).
    pub doorways: Vec<DoorwayState>,
    /// Store fleet.
    pub stores: Vec<StoreId>,
    /// Cloaking mechanism used by this campaign's kit.
    pub cloak: CloakMode,
    /// Activity schedule (non-overlapping, ordered).
    pub windows: Vec<ActivityWindow>,
    /// Days the campaign takes to re-point doorways after a store seizure
    /// (§5.3.2: 7 days for GBC-seized stores, 15 for SMGPA on average).
    pub reaction_days: u32,
    /// Whether the campaign partners with the tracked supplier (§4.5:
    /// MSVALIDATE does).
    pub supplier_partner: bool,
}

impl CampaignState {
    /// Juice level on `day` (0 outside all windows). Overlapping windows
    /// combine by maximum, so a peak window can sit on top of a longer
    /// background window.
    pub fn juice_on(&self, day: SimDate) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(day))
            .map(|w| w.juice)
            .fold(0.0, f64::max)
    }

    /// Whether the campaign is actively SEOing on `day`.
    pub fn is_active(&self, day: SimDate) -> bool {
        self.juice_on(day) > 0.0
    }

    /// Doorways currently funneling to `store`.
    pub fn doorways_to(&self, store: StoreId) -> impl Iterator<Item = &DoorwayState> {
        self.doorways
            .iter()
            .filter(move |d| d.target_store == store)
    }

    /// Re-points every doorway currently targeting `from` to `to` (the
    /// §5.3.2 counter-move: "SEO campaigns can easily modify their doorways
    /// to redirect users to their backups").
    pub fn repoint_doorways(&mut self, from: StoreId, to: StoreId) -> usize {
        let mut n = 0;
        for d in &mut self.doorways {
            if d.target_store == from {
                d.target_store = to;
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    fn campaign() -> CampaignState {
        CampaignState {
            id: CampaignId(0),
            name: "KEY".into(),
            classified: true,
            verticals: vec![VerticalId(0)],
            doorways: vec![
                DoorwayState {
                    domain: DomainId(1),
                    terms: vec![TermId(0)],
                    vertical: VerticalId(0),
                    target_store: StoreId(0),
                    live_from: day(100),
                    live_until: day(300),
                    penalized: None,
                },
                DoorwayState {
                    domain: DomainId(2),
                    terms: vec![TermId(1)],
                    vertical: VerticalId(0),
                    target_store: StoreId(1),
                    live_from: day(100),
                    live_until: day(300),
                    penalized: None,
                },
            ],
            stores: vec![StoreId(0), StoreId(1)],
            cloak: CloakMode::Redirect,
            windows: vec![
                ActivityWindow {
                    from: day(131),
                    to: day(163),
                    juice: 0.6,
                },
                ActivityWindow {
                    from: day(200),
                    to: day(230),
                    juice: 0.28,
                },
            ],
            reaction_days: 7,
            supplier_partner: false,
        }
    }

    #[test]
    fn juice_follows_windows() {
        let c = campaign();
        assert_eq!(c.juice_on(day(130)), 0.0);
        assert_eq!(c.juice_on(day(140)), 0.6);
        assert_eq!(c.juice_on(day(180)), 0.0);
        assert_eq!(c.juice_on(day(210)), 0.28);
        assert!(c.is_active(day(131)));
        assert!(!c.is_active(day(164)));
    }

    #[test]
    fn doorway_liveness_is_half_open() {
        let c = campaign();
        assert!(!c.doorways[0].is_live(day(99)));
        assert!(c.doorways[0].is_live(day(100)));
        assert!(c.doorways[0].is_live(day(299)));
        assert!(!c.doorways[0].is_live(day(300)));
    }

    #[test]
    fn repoint_moves_only_matching_doorways() {
        let mut c = campaign();
        let moved = c.repoint_doorways(StoreId(0), StoreId(5));
        assert_eq!(moved, 1);
        assert_eq!(c.doorways[0].target_store, StoreId(5));
        assert_eq!(c.doorways[1].target_store, StoreId(1));
        assert_eq!(c.doorways_to(StoreId(5)).count(), 1);
    }
}

//! World generation: turning a [`ScenarioConfig`] into a live [`World`].
//!
//! Generation order matters for determinism: verticals/terms, legitimate
//! web, brands, firms, supplier, the 52 classified campaigns (with the
//! scripted case-study beats from §5 wired in), then the shadow tail.
//! Every stream derives from the scenario seed via labeled sub-RNGs, so a
//! seed fully determines the world.

use rand::seq::SliceRandom;
use rand::Rng;

use ss_types::market::{self, CampaignSpec};
use ss_types::rng::{derive_seed, sub_rng, SimRng};
use ss_types::{
    BrandId, CampaignId, DomainId, FirmId, SimDate, StoreId, TermId, VerticalId, CRAWL_END_DAY,
    CRAWL_START_DAY,
};
use ss_web::cloak::CloakMode;
use ss_web::pagegen::legit::LegitTheme;
use ss_web::pagegen::storefront::StoreTemplate;
use ss_web::pagegen::words;

use crate::campaign::{ActivityWindow, CampaignState, DoorwayState};
use crate::domains::{self, SiteKind};
use crate::legal::FirmState;
use crate::scenario::ScenarioConfig;
use crate::store::StoreState;
use crate::world::{VerticalState, World};

/// Multiple of the monitored term count that exists as a queryable term
/// universe (users and campaigns are not limited to the crawler's picks).
const TERM_UNIVERSE_FACTOR: usize = 2;

/// Builds the world.
pub fn build_world(cfg: ScenarioConfig) -> ss_types::Result<World> {
    cfg.validate()?;
    let seed = cfg.seed;
    let engine = ss_search::SearchEngine::new(derive_seed(seed, "engine"), 0.05);
    let mut w = World::new_shell(cfg, engine);

    build_brands(&mut w);
    build_verticals_and_terms(&mut w);
    build_legit_web(&mut w);
    build_firms(&mut w);
    build_supplier(&mut w);
    build_campaigns(&mut w);
    build_shadow_campaigns(&mut w);
    record_campaign_windows(&mut w);
    plan_penalties(&mut w);

    Ok(w)
}

/// Stamps every campaign's activity windows into the ground-truth event
/// log, so provenance queries can anchor a causal chain at "campaign
/// created / active from-to" without re-deriving it from agent state.
fn record_campaign_windows(w: &mut World) {
    for ci in 0..w.campaigns.len() {
        let c = w.campaigns.row(CampaignId::from_index(ci));
        let (id, windows) = (c.id, c.windows.to_vec());
        for win in windows {
            w.events.push(crate::events::Event::CampaignActive {
                campaign: id,
                from: win.from,
                to: win.to,
            });
        }
    }
}

fn build_brands(w: &mut World) {
    w.brand_names = market::all_brands();
}

fn brand_id(w: &World, name: &str) -> BrandId {
    BrandId::from_index(
        w.brand_names
            .iter()
            .position(|b| *b == name)
            .expect("brand registered"),
    )
}

fn build_verticals_and_terms(w: &mut World) {
    let n = w.cfg.scale.verticals;
    let monitored = w.cfg.scale.terms_per_vertical;
    let universe = monitored * TERM_UNIVERSE_FACTOR;
    for (vi, spec) in market::VERTICALS.iter().take(n).enumerate() {
        let vid = VerticalId::from_index(vi);
        let mut rng = sub_rng(w.cfg.seed, &format!("terms/{}", spec.name));
        let brand = spec.brands[0];

        // Two dialects of terms, mirroring §4.1.1: "kit-style" strings the
        // SEO kits bake into doorway URLs, and suggest-style strings real
        // users type. Both join the universe.
        let mut texts: Vec<String> = Vec::new();
        let push_unique = |texts: &mut Vec<String>, t: String| {
            if !texts.contains(&t) {
                texts.push(t);
            }
        };
        // Kit-style: adjective + brand + optional noun.
        while texts.len() < universe / 2 {
            let adj = market::TERM_ADJECTIVES[rng.gen_range(0..market::TERM_ADJECTIVES.len())];
            let noun = market::PRODUCT_NOUNS[rng.gen_range(0..market::PRODUCT_NOUNS.len())];
            let b = spec.brands[rng.gen_range(0..spec.brands.len())].to_ascii_lowercase();
            let t = match rng.gen_range(0..3) {
                0 => format!("{adj} {b}"),
                1 => format!("{adj} {b} {noun}"),
                _ => format!("{b} {noun} {adj}"),
            };
            push_unique(&mut texts, t);
        }
        // Suggest-style: what the suggest service emits for the brand.
        let expansions = w.suggest.expand_recursive(brand, 2);
        for t in expansions {
            if texts.len() >= universe {
                break;
            }
            push_unique(&mut texts, t);
        }
        // Top up with composed strings if suggest ran dry.
        let mut salt = 0u32;
        while texts.len() < universe {
            push_unique(
                &mut texts,
                format!("{} style {salt}", brand.to_ascii_lowercase()),
            );
            salt += 1;
        }

        let terms: Vec<TermId> = texts.iter().map(|t| w.engine.add_term(vid, t)).collect();
        let popularity = (f64::from(spec.table1.psrs) / 170_000.0)
            .sqrt()
            .clamp(0.3, 2.2);
        let elite_prob = (0.03 + spec.fig3.top10_max / 300.0).clamp(0.03, 0.17);
        w.verticals.push(VerticalState {
            id: vid,
            spec,
            terms,
            popularity,
            elite_prob,
        });
    }
}

fn build_legit_web(w: &mut World) {
    let per_term = w.cfg.scale.legit_per_term;
    let themes = [
        LegitTheme::News,
        LegitTheme::Blog,
        LegitTheme::Retailer,
        LegitTheme::Forum,
        LegitTheme::Official,
    ];
    for vi in 0..w.verticals.len() {
        let mut rng = sub_rng(w.cfg.seed, &format!("legit/{vi}"));
        let terms = w.verticals[vi].terms.clone();
        let spec = w.verticals[vi].spec;
        // A pool of legit domains, each hosting ~3 term pages.
        let pool_size = (terms.len() * per_term / 3).max(1);
        let mut pool: Vec<DomainId> = Vec::with_capacity(pool_size);
        for _ in 0..pool_size {
            let theme = themes[rng.gen_range(0..themes.len())];
            let brand = spec.brands[rng.gen_range(0..spec.brands.len())];
            let name = domains::legit_name(&mut rng);
            pool.push(w.domains.register_unique(
                &name,
                SiteKind::Legit { theme, brand },
                SimDate::EPOCH,
            ));
        }
        let mut next = 0usize;
        for &term in &terms {
            for slot in 0..per_term {
                let domain = pool[next % pool.len()];
                next += 1;
                let host = w.domains.get(domain).name.clone();
                let url = if slot == 0 {
                    ss_types::Url::root(host)
                } else {
                    ss_types::Url::new(host, &format!("/page/{}", rng.gen_range(0..10_000)), "")
                };
                let quality = rng.gen_range(0.2..0.95);
                let relevance = rng.gen_range(0.4..0.9);
                w.engine
                    .index_page(term, url, domain, quality, relevance, SimDate::EPOCH);
            }
        }
    }
}

fn build_firms(w: &mut World) {
    let specs = market::FIRMS;
    let names = market::all_brands();
    for (fi, (spec, policy)) in specs.iter().zip(w.cfg.seizure_policies.clone()).enumerate() {
        let mut rng = sub_rng(w.cfg.seed, &format!("firm/{fi}"));
        // Each firm represents a deterministic subset of the brand universe.
        let mut brand_pool: Vec<&str> = names.clone();
        brand_pool.shuffle(&mut rng);
        let brands: Vec<BrandId> = brand_pool
            .into_iter()
            .take(spec.brands as usize)
            .map(|b| brand_id(w, b))
            .collect();
        w.firms.push(FirmState {
            id: FirmId::from_index(fi),
            name: spec.name.to_owned(),
            brands,
            policy,
            cases: Vec::new(),
        });
    }
}

fn build_supplier(w: &mut World) {
    w.supplier_domain = w.domains.register_unique(
        "track-eastern-fulfillment.com",
        SiteKind::Supplier,
        SimDate::EPOCH,
    );
}

/// Which verticals a campaign targets, honouring KEY's exclusions and
/// weighting toward verticals with remaining target capacity (Table 1's
/// per-vertical campaign counts).
fn assign_verticals(
    w: &World,
    spec: &CampaignSpec,
    capacity: &mut [i32],
    rng: &mut SimRng,
) -> Vec<VerticalId> {
    let n_avail = w.verticals.len();
    if spec.name == "KEY" {
        return w
            .verticals
            .iter()
            .filter(|v| v.spec.key_targeted)
            .map(|v| v.id)
            .collect();
    }
    let want = ((spec.brands as f64 * 0.6).round() as usize).clamp(1, n_avail);
    let mut picks: Vec<VerticalId> = Vec::new();
    // Weighted sampling without replacement by remaining capacity.
    for _ in 0..want {
        let total: i32 = capacity
            .iter()
            .enumerate()
            .filter(|(i, _)| !picks.iter().any(|p| p.index() == *i))
            .map(|(_, c)| (*c).max(1))
            .sum();
        let mut x = rng.gen_range(0..total.max(1));
        for (i, c) in capacity.iter().enumerate() {
            if picks.iter().any(|p| p.index() == i) {
                continue;
            }
            let wgt = (*c).max(1);
            if x < wgt {
                picks.push(VerticalId::from_index(i));
                break;
            }
            x -= wgt;
        }
    }
    for p in &picks {
        capacity[p.index()] -= 1;
    }
    picks
}

fn scaled(n: u32, scale: f64) -> usize {
    ((f64::from(n) * scale).round() as usize).max(1)
}

/// Per-campaign activity schedule: a long background window plus the peak
/// window whose length Table 2 reports.
fn build_windows(spec_peak: u32, rng: &mut SimRng, early: bool) -> Vec<ActivityWindow> {
    let bg_start = if early {
        rng.gen_range(0..40)
    } else {
        rng.gen_range(60..160)
    };
    let bg_len = rng.gen_range(180..320);
    let background = ActivityWindow {
        from: SimDate::from_day_index(bg_start),
        to: SimDate::from_day_index((bg_start + bg_len).min(CRAWL_END_DAY + 40)),
        juice: 0.26,
    };
    let peak_len = spec_peak.max(3);
    let latest = CRAWL_END_DAY
        .saturating_sub(peak_len)
        .max(CRAWL_START_DAY + 1);
    let peak_start = rng.gen_range(CRAWL_START_DAY..=latest);
    let peak = ActivityWindow {
        from: SimDate::from_day_index(peak_start),
        to: SimDate::from_day_index(peak_start + peak_len),
        juice: 0.55,
    };
    vec![peak, background]
}

/// Creates one store for `campaign`, registering its domain and backups.
#[allow(clippy::too_many_arguments)]
fn create_store(
    w: &mut World,
    campaign: CampaignId,
    campaign_name: &str,
    vertical: VerticalId,
    brands: &[BrandId],
    rng: &mut SimRng,
    created: SimDate,
    named_domains: Option<Vec<String>>,
) -> StoreId {
    let id = StoreId::from_index(w.stores.len());
    let anchor = w.verticals[vertical.index()].spec.brands[0];
    let locale = market::STORE_LOCALES[rng.gen_range(0..market::STORE_LOCALES.len())];
    let (first, backups): (DomainId, Vec<DomainId>) = match named_domains {
        Some(names) => {
            let ids: Vec<DomainId> = names
                .iter()
                .map(|n| {
                    w.domains
                        .register_unique(n, SiteKind::Storefront { store: id }, created)
                })
                .collect();
            (ids[0], ids[1..].to_vec())
        }
        None => {
            let n_backups = rng.gen_range(2..6);
            let mut ids = Vec::new();
            for _ in 0..=n_backups {
                let name = domains::store_name(rng, anchor);
                ids.push(w.domains.register_unique(
                    &name,
                    SiteKind::Storefront { store: id },
                    created,
                ));
            }
            (ids[0], ids[1..].to_vec())
        }
    };
    let name = {
        let host = w.domains.get(first).name.clone();
        let stem = host
            .as_str()
            .split('.')
            .next()
            .unwrap_or("store")
            .replace('-', " ");
        format!("{} {}", stem, locale)
    };
    // Built as the nested form (keeping the seeded draw order stable since
    // the pre-table layout), then destructured into columns by `push`.
    w.stores.push(StoreState {
        id,
        campaign,
        name,
        brands: brands.to_vec(),
        locale: locale.to_owned(),
        current_domain: first,
        domain_history: vec![(created, first)],
        backup_pool: backups,
        order_counter: rng.gen_range(2_000..40_000),
        orders_accrued: 0,
        merchant_id: format!("m-{}", words::token(rng, 8)),
        awstats_public: rng.gen::<f64>() < 0.085,
        created,
        months: Vec::new(),
        seed: derive_seed(w.cfg.seed, &format!("store/{campaign_name}/{}", id.0)),
        retired: false,
    });
    id
}

/// Creates the doorway fleet for a campaign across its verticals/windows.
fn create_doorways(w: &mut World, ci: usize, n_doorways: usize, rng: &mut SimRng) {
    let campaign = CampaignId::from_index(ci);
    let row = w.campaigns.row(campaign);
    let verticals = row.verticals.to_vec();
    let windows = row.windows.to_vec();
    let stores = row.stores.to_vec();
    let cloak = row.cloak;
    if verticals.is_empty() || stores.is_empty() {
        return;
    }
    for k in 0..n_doorways {
        let vertical = verticals[k % verticals.len()];
        let vstate = &w.verticals[vertical.index()];
        let intensity = (vstate.spec.fig3.top100_max / 42.0).clamp(0.08, 1.0);
        let n_terms = (1.0 + intensity * 5.0).round() as usize;
        // Cohorts: doorways distribute across the campaign's windows.
        let win = windows[k % windows.len()];
        let live_from = win.from + rng.gen_range(0..8);
        let live_until = win.to + rng.gen_range(10..40);
        // Target a store of the same vertical when one exists.
        let store = stores
            .iter()
            .copied()
            .filter(|s| {
                let brands = w.stores.row(*s).brands;
                w.verticals[vertical.index()]
                    .spec
                    .brands
                    .iter()
                    .any(|b| brands.iter().any(|sb| w.brand_names[sb.index()] == *b))
            })
            .nth(k % stores.len().max(1))
            .unwrap_or(stores[k % stores.len()]);

        let compromised = rng.gen::<f64>() < 0.85;
        let name = domains::doorway_name(rng);
        let domain = w.domains.register_unique(
            &name,
            SiteKind::Doorway {
                campaign,
                compromised,
                cloak,
                target_store: store,
            },
            live_from,
        );
        // Term targets: the first term is indexed at the site root (this is
        // what the root-only label policy can actually mark).
        let mut terms = Vec::with_capacity(n_terms);
        let term_pool = &w.verticals[vertical.index()].terms;
        for _ in 0..n_terms {
            let t = term_pool[rng.gen_range(0..term_pool.len())];
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        let host = w.domains.get(domain).name.clone();
        for (i, &t) in terms.iter().enumerate() {
            let text = w.engine.terms()[t.index()].text.clone();
            let url = if i == 0 {
                ss_types::Url::root(host.clone())
            } else {
                ss_types::Url::new(
                    host.clone(),
                    "/",
                    &format!("key={}", ss_types::url::encode_component(&text)),
                )
            };
            let quality = rng.gen_range(0.05..0.3);
            let relevance = rng.gen_range(0.55..0.85);
            w.engine
                .index_page(t, url, domain, quality, relevance, live_from);
        }
        let did = w.campaigns.push_doorway(
            campaign,
            DoorwayState {
                domain,
                terms,
                vertical,
                target_store: store,
                live_from,
                live_until,
                penalized: None,
            },
        );
        w.route.set(domain, did);
    }
}

fn build_campaigns(w: &mut World) {
    let specs = market::all_campaigns();
    let scale = w.cfg.scale.entity_scale;
    let mut capacity: Vec<i32> = w
        .verticals
        .iter()
        .map(|v| (f64::from(v.spec.table1.campaigns) * 0.9).round() as i32)
        .collect();

    for spec in &specs {
        let ci = w.campaigns.len();
        let id = CampaignId::from_index(ci);
        let mut rng = sub_rng(w.cfg.seed, &format!("campaign/{}", spec.name));
        let verticals = assign_verticals(w, spec, &mut capacity, &mut rng);

        // Brand portfolio: vertical anchors first, extras after.
        let mut brands: Vec<BrandId> = Vec::new();
        for v in &verticals {
            for b in w.verticals[v.index()].spec.brands {
                let bid = brand_id(w, b);
                if !brands.contains(&bid) {
                    brands.push(bid);
                }
            }
        }
        let mut extras: Vec<&str> = market::EXTRA_BRANDS.to_vec();
        extras.shuffle(&mut rng);
        for e in extras {
            if brands.len() >= spec.brands as usize {
                break;
            }
            let bid = brand_id(w, e);
            if !brands.contains(&bid) {
                brands.push(bid);
            }
        }

        let cloak = match spec.name {
            "IFRAMEINJS" => CloakMode::Iframe { obfuscation: 3 },
            _ => match rng.gen_range(0..10) {
                0..=4 => CloakMode::Iframe {
                    obfuscation: rng.gen_range(0..4),
                },
                5..=7 => CloakMode::Redirect,
                _ => CloakMode::JsRedirect,
            },
        };

        let early = matches!(spec.name, "KEY" | "MSVALIDATE" | "PHP?P=" | "BIGLOVE")
            || rng.gen::<f64>() < 0.3;
        let mut windows = build_windows(spec.peak_days, &mut rng, early);
        let mut reaction_days = rng.gen_range(2..25);
        let mut supplier_partner = false;

        // ---- scripted case-study beats (§5) ----
        match spec.name {
            "KEY" => {
                // Active early, collapses mid-December 2013 (§5.2.1).
                windows = vec![
                    ActivityWindow {
                        from: SimDate::from_day_index(95),
                        to: SimDate::from_day_index(163),
                        juice: 0.62,
                    },
                    ActivityWindow {
                        from: SimDate::from_day_index(164),
                        to: SimDate::from_day_index(CRAWL_END_DAY),
                        juice: 0.08,
                    },
                ];
            }
            "MOONKIS" => {
                // §5.2.1: March 2014 — negligible top-10, hundreds in the
                // top-100, order volume steady.
                windows = vec![
                    ActivityWindow {
                        from: SimDate::from_day_index(180),
                        to: SimDate::from_day_index(239),
                        juice: 0.58,
                    },
                    ActivityWindow {
                        from: SimDate::from_day_index(240),
                        to: SimDate::from_day_index(270),
                        juice: 0.30,
                    },
                    ActivityWindow {
                        from: SimDate::from_day_index(271),
                        to: SimDate::from_day_index(CRAWL_END_DAY),
                        juice: 0.55,
                    },
                ];
            }
            "PHP?P=" => {
                reaction_days = 1; // re-pointed doorways within 24h (§5.3.2)
            }
            "MSVALIDATE" => {
                supplier_partner = true; // §4.5
            }
            _ => {}
        }

        w.campaigns.push(CampaignState {
            id,
            name: spec.name.to_owned(),
            classified: true,
            verticals: verticals.clone(),
            doorways: Vec::new(),
            stores: Vec::new(),
            cloak,
            windows,
            reaction_days,
            supplier_partner,
        });
        w.templates
            .push(StoreTemplate::for_campaign(spec.name, w.cfg.seed));

        // Stores: creation staggered across the study so store lifetimes
        // (first sighting → seizure) are not artificially compressed; real
        // storefronts spawn continuously.
        let n_stores = scaled(spec.stores, scale);
        for s in 0..n_stores {
            let created = SimDate::from_day_index(rng.gen_range(0..220));
            let vertical = verticals[s % verticals.len()];
            let anchor = brand_id(w, w.verticals[vertical.index()].spec.brands[0]);
            let mut store_brands = vec![anchor];
            for b in &brands {
                if store_brands.len() >= 4 {
                    break;
                }
                if !store_brands.contains(b) {
                    store_brands.push(*b);
                }
            }
            let sid = create_store(
                w,
                id,
                spec.name,
                vertical,
                &store_brands,
                &mut rng,
                created,
                None,
            );
            w.campaigns.add_store(id, sid);
        }

        // ---- scripted stores ----
        if spec.name == "BIGLOVE" {
            // The coco*.com Chanel storefront of §5.2.3 / Figure 5.
            let vertical = verticals[0];
            let chanel = brand_id(w, "Chanel");
            let sid = create_store(
                w,
                id,
                spec.name,
                vertical,
                &[chanel],
                &mut rng,
                SimDate::from_day_index(300),
                Some(vec![
                    "cocoviphandbags.com".into(),
                    "cocovipbags.com".into(),
                    "cocolovebags.com".into(),
                ]),
            );
            w.stores.set_awstats_public(sid, true);
            w.stores.set_name(sid, "coco vip bags");
            w.campaigns.add_store(id, sid);
            if w.cfg.proactive_rotation {
                // Rotations at end of June and mid-August 2014 (Fig. 5).
                for day in [357, 406] {
                    w.proactive_rotations
                        .entry(SimDate::from_day_index(day))
                        .or_default()
                        .push(sid);
                }
            }
            // cocoviphandbags.com seized July 11, 2014 — after the store
            // had already moved on (§5.2.3).
            let first_domain = w.stores.row(sid).domain_history[0].1;
            w.scripted_seizures
                .entry(SimDate::from_day_index(371))
                .or_default()
                .push((first_domain, FirmId(0)));
        }
        if spec.name == "PHP?P=" {
            // Figure 6: four international stores; the Abercrombie UK
            // domain is seized Feb 9, 2014.
            let vertical = verticals[0];
            let abercrombie = brand_id(w, "Abercrombie");
            let hollister = brand_id(w, "Hollister");
            let woolrich = brand_id(w, "Woolrich");
            let mut intl = Vec::new();
            for (label, brand, locale) in [
                ("abercrombie-uk", abercrombie, "uk"),
                ("abercrombie-de", abercrombie, "de"),
                ("hollister-uk", hollister, "uk"),
                ("woolrich-de", woolrich, "de"),
            ] {
                let sid = create_store(
                    w,
                    id,
                    spec.name,
                    vertical,
                    &[brand],
                    &mut rng,
                    SimDate::from_day_index(120),
                    Some(vec![
                        format!("{label}-outlet.com"),
                        format!("{label}-outlet2.com"),
                        format!("{label}-outlet3.com"),
                    ]),
                );
                w.stores.set_locale(sid, locale);
                w.campaigns.add_store(id, sid);
                intl.push(sid);
            }
            let uk_domain = w.stores.row(intl[0]).domain_history[0].1;
            w.scripted_seizures
                .entry(SimDate::from_day_index(219))
                .or_default()
                .push((uk_domain, FirmId(0)));
        }

        // Doorways last (they need stores to target).
        let n_doorways = scaled(spec.doorways, scale);
        create_doorways(w, ci, n_doorways, &mut rng);
    }
}

fn build_shadow_campaigns(w: &mut World) {
    let n = w.cfg.scale.shadow_campaigns;
    let mut capacity: Vec<i32> = w.verticals.iter().map(|_| 10_000).collect();
    for k in 0..n {
        let name = format!("SHADOW.{k:03}");
        let ci = w.campaigns.len();
        let id = CampaignId::from_index(ci);
        let mut rng = sub_rng(w.cfg.seed, &format!("shadow/{k}"));
        let spec = CampaignSpec {
            name: "shadow",
            doorways: rng.gen_range(8..130),
            stores: rng.gen_range(4..55),
            brands: rng.gen_range(1..5),
            peak_days: rng.gen_range(10..120),
        };
        let verticals = assign_verticals(w, &spec, &mut capacity, &mut rng);
        let early = rng.gen::<f64>() < 0.3;
        let windows = build_windows(spec.peak_days, &mut rng, early);
        let cloak = match rng.gen_range(0..10) {
            0..=4 => CloakMode::Iframe {
                obfuscation: rng.gen_range(0..4),
            },
            5..=7 => CloakMode::Redirect,
            _ => CloakMode::JsRedirect,
        };
        w.campaigns.push(CampaignState {
            id,
            name: name.clone(),
            classified: false,
            verticals: verticals.clone(),
            doorways: Vec::new(),
            stores: Vec::new(),
            cloak,
            windows,
            reaction_days: rng.gen_range(3..30),
            supplier_partner: false,
        });
        w.templates
            .push(StoreTemplate::for_campaign(&name, w.cfg.seed));

        let n_stores = scaled(spec.stores, w.cfg.scale.entity_scale);
        for s in 0..n_stores {
            let created = SimDate::from_day_index(rng.gen_range(0..220));
            let vertical = verticals[s % verticals.len()];
            let anchor = brand_id(w, w.verticals[vertical.index()].spec.brands[0]);
            let sid = create_store(w, id, &name, vertical, &[anchor], &mut rng, created, None);
            w.campaigns.add_store(id, sid);
        }
        let n_doorways = scaled(spec.doorways, w.cfg.scale.entity_scale);
        create_doorways(w, ci, n_doorways, &mut rng);
    }
}

fn plan_penalties(w: &mut World) {
    let policy = &w.cfg.search_policy;
    let mut rng = sub_rng(w.cfg.seed, "abuse-team");
    let mut plans: std::collections::BTreeMap<SimDate, Vec<_>> = std::collections::BTreeMap::new();
    // Global doorway-table order is per-campaign build order, so this scan
    // consumes the abuse-team stream exactly as the nested walk did.
    let dt = w.campaigns.doorway_table();
    for di in 0..dt.len() {
        if rng.gen::<f64>() < policy.detect_prob {
            let delay = rng.gen_range(policy.delay_min..=policy.delay_max);
            plans
                .entry(dt.live_from[di] + delay)
                .or_default()
                .push(dt.domain[di]);
        }
    }
    w.penalty_due = plans;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scale, ScenarioConfig};

    fn tiny_world() -> World {
        World::build(ScenarioConfig::tiny(42)).unwrap()
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.stores.len(), b.stores.len());
        assert_eq!(a.engine.doc_count(), b.engine.doc_count());
        let an: Vec<&str> = a.campaigns.iter().map(|c| c.name).collect();
        let bn: Vec<&str> = b.campaigns.iter().map(|c| c.name).collect();
        assert_eq!(an, bn);
    }

    #[test]
    fn classified_campaigns_come_first_and_complete() {
        let w = tiny_world();
        let classified: Vec<_> = w.campaigns.iter().filter(|c| c.classified).collect();
        assert_eq!(classified.len(), 52);
        assert!(w.campaigns.len() > 52, "shadow tail expected");
        for c in classified {
            assert!(!c.stores.is_empty(), "{} has no stores", c.name);
            assert!(!c.doorways.is_empty(), "{} has no doorways", c.name);
            assert!(!c.verticals.is_empty(), "{} has no verticals", c.name);
        }
    }

    #[test]
    fn key_targets_only_key_verticals() {
        let w = tiny_world();
        let key = w.campaigns.iter().find(|c| c.name == "KEY").unwrap();
        for v in key.verticals {
            assert!(w.verticals[v.index()].spec.key_targeted);
        }
    }

    #[test]
    fn doorway_roots_are_indexed() {
        let w = tiny_world();
        let key = w.campaigns.iter().find(|c| c.name == "KEY").unwrap();
        let d = key.doorways.at(0);
        let pages = w.engine.site_query(d.domain);
        assert!(!pages.is_empty());
        assert!(
            pages.iter().any(|p| p.url.is_root_page()),
            "first term should be indexed at the root"
        );
    }

    #[test]
    fn scripted_stores_exist_at_small_scale() {
        let w = World::build(ScenarioConfig::small(7)).unwrap();
        assert!(w.stores.iter().any(|s| s.name == "coco vip bags"));
        let coco = w.stores.iter().find(|s| s.name == "coco vip bags").unwrap();
        assert_eq!(
            w.domains.get(coco.current_domain).name.as_str(),
            "cocoviphandbags.com"
        );
        assert_eq!(coco.backup_pool.len(), 2);
        assert!(!w.scripted_seizures.is_empty());
        assert_eq!(w.proactive_rotations.len(), 2);
    }

    #[test]
    fn term_universe_is_larger_than_monitored_set() {
        let cfg = ScenarioConfig::tiny(1);
        let monitored = cfg.scale.terms_per_vertical;
        let w = World::build(cfg).unwrap();
        for v in &w.verticals {
            assert_eq!(v.terms.len(), monitored * TERM_UNIVERSE_FACTOR);
        }
    }

    #[test]
    fn penalty_plans_cover_a_policy_fraction() {
        let w = tiny_world();
        let doorways: usize = w.campaigns.iter().map(|c| c.doorways.len()).sum();
        let planned: usize = w.penalty_due.values().map(Vec::len).sum();
        let frac = planned as f64 / doorways as f64;
        let p = w.cfg.search_policy.detect_prob;
        assert!((frac - p).abs() < 0.08, "planned {frac} vs policy {p}");
    }

    #[test]
    fn supplier_partner_is_msvalidate() {
        let w = tiny_world();
        let partners: Vec<&str> = w
            .campaigns
            .iter()
            .filter(|c| c.supplier_partner)
            .map(|c| c.name)
            .collect();
        assert_eq!(partners, ["MSVALIDATE"]);
    }

    #[test]
    fn scale_changes_world_size() {
        let tiny = World::build(ScenarioConfig::tiny(1)).unwrap();
        let small = World::build(ScenarioConfig::new(1, Scale::small())).unwrap();
        assert!(small.domains.len() > tiny.domains.len());
        assert!(small.engine.doc_count() > tiny.engine.doc_count());
    }
}

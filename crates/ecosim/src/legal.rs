//! Brand-protection firms and the seizure legal process (§3.2.2, §5.3).

use ss_types::{BrandId, CaseId, DomainId, FirmId, SimDate};

use crate::scenario::SeizurePolicy;

/// One court case: a bulk seizure of domains for one plaintiff brand.
#[derive(Debug, Clone)]
pub struct CourtCase {
    /// Case id (dense across the world).
    pub id: CaseId,
    /// Executing firm.
    pub firm: FirmId,
    /// Plaintiff brand.
    pub brand: BrandId,
    /// Docket label, e.g. "14-cv-00231".
    pub docket: String,
    /// Effective (seizure) day.
    pub day: SimDate,
    /// All domains seized by the order — storefronts we might observe in
    /// PSRs plus offstage bulk (court schedules run to hundreds or
    /// thousands of names).
    pub domains: Vec<DomainId>,
}

/// A brand-protection firm.
#[derive(Debug, Clone)]
pub struct FirmState {
    /// Id.
    pub id: FirmId,
    /// Name (GBC / SMGPA).
    pub name: String,
    /// Brands it represents.
    pub brands: Vec<BrandId>,
    /// Seizure cadence and targeting policy.
    pub policy: SeizurePolicy,
    /// Cases filed so far.
    pub cases: Vec<CourtCase>,
}

impl FirmState {
    /// Whether the firm files a case on `day` (fixed cadence from its
    /// policy, offset by the firm index so firms don't synchronize).
    pub fn files_on(&self, day: SimDate) -> bool {
        let offset = (self.id.index() as u32) * 5;
        let d = day.day_index();
        d >= offset && (d - offset).is_multiple_of(self.policy.case_interval)
    }

    /// Docket string for the next case.
    pub fn next_docket(&self, day: SimDate) -> String {
        let (year, _, _) = day.ymd();
        format!(
            "{}-cv-{:05}",
            year % 100,
            100 + self.cases.len() * 7 + self.id.index()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn firm(interval: u32, idx: u32) -> FirmState {
        FirmState {
            id: FirmId(idx),
            name: "GBC".into(),
            brands: vec![BrandId(0)],
            policy: SeizurePolicy {
                case_interval: interval,
                observed_fraction: 0.01,
                target_lifetime: 60,
            },
            cases: Vec::new(),
        }
    }

    #[test]
    fn cadence_is_periodic_with_offset() {
        let f = firm(13, 0);
        let hits: Vec<u32> = (0..60)
            .filter(|d| f.files_on(SimDate::from_day_index(*d)))
            .collect();
        assert_eq!(hits, vec![0, 13, 26, 39, 52]);
        let g = firm(13, 1);
        let hits_g: Vec<u32> = (0..60)
            .filter(|d| g.files_on(SimDate::from_day_index(*d)))
            .collect();
        assert_eq!(hits_g, vec![5, 18, 31, 44, 57], "firms are phase-shifted");
    }

    #[test]
    fn dockets_are_unique_per_case_count() {
        let mut f = firm(13, 0);
        let d1 = f.next_docket(SimDate::from_day_index(200));
        f.cases.push(CourtCase {
            id: CaseId(0),
            firm: f.id,
            brand: BrandId(0),
            docket: d1.clone(),
            day: SimDate::from_day_index(200),
            domains: vec![],
        });
        let d2 = f.next_docket(SimDate::from_day_index(213));
        assert_ne!(d1, d2);
        assert!(d1.starts_with("14-cv-"));
    }
}

//! The supplier agent: fulfillment for partnered campaigns and the
//! tracking-portal data the paper scraped (§4.5).

use rand::Rng;
use ss_types::rng::SimRng;
use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};
use ss_types::{SimDate, StoreId};
use ss_web::pagegen::supplier::{ShipRecord, ShipStatus};

/// The supplier's state: an order counter and the full shipment ledger.
#[derive(Debug)]
pub struct SupplierState {
    /// Ledger of shipment records, in order-number order.
    pub records: Vec<ShipRecord>,
    /// Which store each record came from (ground truth; not exposed on the
    /// portal).
    pub record_stores: Vec<StoreId>,
    next_order: u64,
    rng: SimRng,
}

impl SupplierState {
    /// Creates a supplier whose order numbers start at `base`.
    pub fn new(seed: u64, base: u64) -> Self {
        SupplierState {
            records: Vec::new(),
            record_stores: Vec::new(),
            next_order: base,
            rng: ss_types::rng::sub_rng(seed, "supplier"),
        }
    }

    /// Registers `n` fulfillment orders from `store` on `day`, sampling
    /// destination and final status per the paper's observed mix
    /// (256K delivered / 4K seized at source / 15K seized at destination /
    /// 1,319 returned, §4.5).
    pub fn fulfill(&mut self, store: StoreId, day: SimDate, n: u64) {
        for _ in 0..n {
            let order_no = self.next_order;
            self.next_order += 1;
            let status = self.sample_status();
            let country = self.sample_country();
            // Tracking events trail the order by a short transit delay.
            let transit: u32 = self.rng.gen_range(4..18);
            self.records.push(ShipRecord {
                order_no,
                date: day + transit,
                country,
                status,
            });
            self.record_stores.push(store);
        }
    }

    fn sample_status(&mut self) -> ShipStatus {
        // Mix from §4.5 out of ~276.3K resolved shipments.
        let x: f64 = self.rng.gen();
        if x < 0.9266 {
            ShipStatus::Delivered
        } else if x < 0.9266 + 0.0145 {
            ShipStatus::SeizedAtSource
        } else if x < 0.9266 + 0.0145 + 0.0543 {
            ShipStatus::SeizedAtDestination
        } else {
            ShipStatus::Returned
        }
    }

    fn sample_country(&mut self) -> String {
        // Weighted by the paper's destination counts (§4.5).
        let table = ss_types::market::SHIP_COUNTRIES;
        let total: u32 = table.iter().map(|(_, w)| w).sum();
        let mut x = self.rng.gen_range(0..total);
        for (name, w) in table {
            if x < *w {
                return (*name).to_owned();
            }
            x -= w;
        }
        unreachable!("weights cover the range")
    }

    /// Portal bulk lookup: up to 20 order numbers per query (§4.5).
    pub fn lookup(&self, orders: &[u64]) -> (Vec<ShipRecord>, Vec<u64>) {
        let capped = &orders[..orders.len().min(20)];
        let mut found = Vec::new();
        let mut missing = Vec::new();
        for &o in capped {
            match self.records.binary_search_by_key(&o, |r| r.order_no) {
                Ok(i) => found.push(self.records[i].clone()),
                Err(_) => missing.push(o),
            }
        }
        (found, missing)
    }

    /// The most recent `n` records (the portal's scrolling list).
    pub fn recent(&self, n: usize) -> &[ShipRecord] {
        let len = self.records.len();
        &self.records[len.saturating_sub(n)..]
    }

    /// Lowest and highest order numbers on the ledger, if any.
    pub fn order_range(&self) -> Option<(u64, u64)> {
        Some((
            self.records.first()?.order_no,
            self.records.last()?.order_no,
        ))
    }
}

impl Snapshot for SupplierState {
    const TAG: &'static str = "supplier";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        w.put_seq(&self.records, |w, r| {
            w.put_u64(r.order_no);
            w.put_date(r.date);
            w.put_str(&r.country);
            w.put_str(r.status.as_str());
        });
        w.put_seq(&self.record_stores, |w, s| w.put_u32(s.0));
        w.put_u64(self.next_order);
        w.put_nested(&self.rng);
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let records = r.get_seq(|r| {
            let order_no = r.get_u64()?;
            let date = r.get_date()?;
            let country = r.get_str()?;
            let status = r.get_str()?;
            let status = ShipStatus::parse(&status)
                .ok_or_else(|| SnapshotError::Corrupt(format!("ship status {status:?}")))?;
            Ok(ShipRecord {
                order_no,
                date,
                country,
                status,
            })
        })?;
        let record_stores = r.get_seq(|r| Ok(StoreId(r.get_u32()?)))?;
        if record_stores.len() != records.len() {
            return Err(SnapshotError::Corrupt(
                "supplier ledger column lengths disagree".into(),
            ));
        }
        Ok(SupplierState {
            records,
            record_stores,
            next_order: r.get_u64()?,
            rng: r.get_nested()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fulfillment_allocates_sequential_orders() {
        let mut s = SupplierState::new(1, 10_000);
        s.fulfill(StoreId(0), SimDate::from_day_index(10), 5);
        s.fulfill(StoreId(1), SimDate::from_day_index(11), 3);
        let nos: Vec<u64> = s.records.iter().map(|r| r.order_no).collect();
        assert_eq!(nos, (10_000..10_008).collect::<Vec<u64>>());
        assert_eq!(s.order_range(), Some((10_000, 10_007)));
    }

    #[test]
    fn lookup_finds_and_reports_missing_capped_at_20() {
        let mut s = SupplierState::new(1, 100);
        s.fulfill(StoreId(0), SimDate::from_day_index(10), 30);
        let query: Vec<u64> = (95..130).collect(); // 35 asked, 20 honoured
        let (found, missing) = s.lookup(&query);
        assert_eq!(found.len() + missing.len(), 20);
        assert!(missing.contains(&95));
        assert!(found.iter().any(|r| r.order_no == 100));
    }

    #[test]
    fn status_mix_approximates_the_paper() {
        let mut s = SupplierState::new(7, 0);
        s.fulfill(StoreId(0), SimDate::from_day_index(10), 20_000);
        let delivered = s
            .records
            .iter()
            .filter(|r| r.status == ShipStatus::Delivered)
            .count() as f64;
        let frac = delivered / 20_000.0;
        assert!((frac - 0.9266).abs() < 0.01, "delivered fraction {frac}");
        let seized_dest = s
            .records
            .iter()
            .filter(|r| r.status == ShipStatus::SeizedAtDestination)
            .count() as f64
            / 20_000.0;
        assert!(
            (seized_dest - 0.0543).abs() < 0.01,
            "seized-at-dest fraction {seized_dest}"
        );
    }

    #[test]
    fn destinations_lean_us_jp_au() {
        let mut s = SupplierState::new(9, 0);
        s.fulfill(StoreId(0), SimDate::from_day_index(5), 30_000);
        let us = s
            .records
            .iter()
            .filter(|r| r.country == "United States")
            .count() as f64
            / 30_000.0;
        assert!((us - 0.322).abs() < 0.02, "US share {us}");
    }

    #[test]
    fn snapshot_roundtrip_resumes_the_sampling_stream() {
        let mut a = SupplierState::new(5, 1_000);
        a.fulfill(StoreId(0), SimDate::from_day_index(10), 50);
        let mut b = SupplierState::decode(&a.encode()).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.record_stores, b.record_stores);
        // The restored RNG continues the same stream: further fulfillment
        // draws identical statuses, countries, and transit delays.
        a.fulfill(StoreId(1), SimDate::from_day_index(11), 50);
        b.fulfill(StoreId(1), SimDate::from_day_index(11), 50);
        assert_eq!(a.records, b.records);
        assert_eq!(a.order_range(), b.order_range());
    }

    #[test]
    fn recent_returns_tail() {
        let mut s = SupplierState::new(2, 50);
        s.fulfill(StoreId(0), SimDate::from_day_index(1), 10);
        let r = s.recent(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2].order_no, 59);
        assert_eq!(s.recent(100).len(), 10);
    }
}

//! The world: composed state, the day-tick loop, and the web façade —
//! a pure [`Fetcher`] read plane plus the [`Web::apply`] tick plane.
//!
//! The day-tick loop itself lives in [`crate::plan`]: each stage plans as
//! a pure function over `&World` and commits through `World::apply_plan`.
//!
//! Entity state lives in component tables ([`crate::tables`]): stores,
//! campaigns, doorways and domains are each a struct-of-arrays table
//! indexed by their dense id. Accessors here hand out borrowed row views;
//! the planners scan raw columns.

use std::collections::BTreeMap;

use ss_types::market::VerticalSpec;
use ss_types::{BrandId, CampaignId, DomainId, FirmId, SimDate, StoreId, TermId, Url, VerticalId};

use ss_search::SearchEngine;
use ss_web::cloak::{self, CloakMode, ServeDecision};
use ss_web::http::{Fetcher, Request, Response, SideEffect, Web};
use ss_web::pagegen::storefront::StoreTemplate;
use ss_web::pagegen::supplier::ShipStatus;
use ss_web::pagegen::{awstats, doorway, legit, notice, storefront, supplier as supplier_pages};

use crate::domains::{DomainTable, Seizure, SiteKind};
use crate::events::EventLog;
use crate::legal::FirmState;
use crate::scenario::ScenarioConfig;
use crate::supplier::SupplierState;
use crate::tables::{CampaignRow, CampaignTable, DomainRoute, DoorwayRow, StoreRow, StoreTable};

/// Per-vertical runtime state.
#[derive(Debug)]
pub struct VerticalState {
    /// Id.
    pub id: VerticalId,
    /// The static spec (Table 1 row etc.).
    pub spec: &'static VerticalSpec,
    /// Term ids, in registration order.
    pub terms: Vec<TermId>,
    /// Relative query popularity (scales impressions).
    pub popularity: f64,
    /// Probability that a doorway in this vertical is "elite" (top-10
    /// capable), derived from the Figure 3 top-10 envelope.
    pub elite_prob: f64,
}

/// The assembled world. Construct via [`World::build`], drive with
/// [`World::tick`] / [`World::run_until`], observe through `Web::fetch`
/// and the public state.
pub struct World {
    /// Scenario this world was built from.
    pub cfg: ScenarioConfig,
    /// Current day (the day `tick` will simulate next).
    pub day: SimDate,
    /// The search engine.
    pub engine: SearchEngine,
    /// The suggest service.
    pub suggest: ss_search::suggest::SuggestService,
    /// Domain table (the simulated DNS).
    pub domains: DomainTable,
    /// Monitored verticals.
    pub verticals: Vec<VerticalState>,
    /// Brand names by `BrandId` index.
    pub brand_names: Vec<&'static str>,
    /// Campaign component table (classified first, then the shadow tail),
    /// owning the global doorway table.
    pub campaigns: CampaignTable,
    /// Store component table.
    pub stores: StoreTable,
    /// Brand-protection firms.
    pub firms: Vec<FirmState>,
    /// The supplier.
    pub supplier: SupplierState,
    /// The supplier portal's domain.
    pub supplier_domain: DomainId,
    /// Ground-truth event log.
    pub events: EventLog,
    /// domain → doorway row for fetch routing (dense array lookup).
    pub(crate) route: DomainRoute,
    /// Penalization schedule, indexed by due day.
    pub(crate) penalty_due: BTreeMap<SimDate, Vec<DomainId>>,
    /// Store rotations queued by seizure reactions, indexed by due day.
    pub(crate) pending_rotations: BTreeMap<SimDate, Vec<StoreId>>,
    /// Scripted proactive rotations, indexed by day.
    pub(crate) proactive_rotations: BTreeMap<SimDate, Vec<StoreId>>,
    /// Scripted seizures, indexed by day.
    pub(crate) scripted_seizures: BTreeMap<SimDate, Vec<(DomainId, FirmId)>>,
    /// Per-campaign storefront templates (same index as `campaigns`).
    pub(crate) templates: Vec<StoreTemplate>,
    pub(crate) next_case: u32,
    /// Worker threads the tick-stage planners may fan out over (`<= 1`
    /// plans serially). Any value commits a bit-identical world: planners
    /// draw from keyed streams and replay merges in index order.
    pub tick_threads: usize,
    /// Telemetry registry: ecosystem-side counters and histograms
    /// (`eco.*`), recorded as ticks execute. Deterministic for a given
    /// seed at any `tick_threads`.
    pub metrics: ss_obs::Registry,
    /// Trace-plane flight recorder for the tick plane. Recording happens
    /// only on the sequential commit path (plan order), so retained
    /// events are bit-identical at any `tick_threads`. Off by default.
    pub recorder: ss_obs::FlightRecorder,
    /// Retained intervention-relevant tick events — the persisted
    /// `WorldEvent` log that `repro explain` walks. Populated only while
    /// the recorder is enabled.
    pub event_trail: Vec<crate::plan::TrailEvent>,
}

/// Ring capacity of the tick plane's flight recorder.
const TRACE_RING_CAP: usize = 1 << 16;

impl World {
    /// Builds a world from a scenario (see the [`crate::scenario`] knobs).
    pub fn build(cfg: ScenarioConfig) -> ss_types::Result<Self> {
        crate::build::build_world(cfg)
    }

    pub(crate) fn new_shell(cfg: ScenarioConfig, engine: SearchEngine) -> Self {
        let seed = cfg.seed;
        World {
            suggest: ss_search::suggest::SuggestService::new(ss_types::rng::derive_seed(
                seed, "suggest",
            )),
            cfg,
            day: SimDate::EPOCH,
            engine,
            domains: DomainTable::new(),
            verticals: Vec::new(),
            brand_names: Vec::new(),
            campaigns: CampaignTable::default(),
            stores: StoreTable::default(),
            firms: Vec::new(),
            supplier: SupplierState::new(seed, 100_000),
            supplier_domain: DomainId(u32::MAX),
            events: EventLog::new(),
            route: DomainRoute::default(),
            penalty_due: BTreeMap::new(),
            pending_rotations: BTreeMap::new(),
            proactive_rotations: BTreeMap::new(),
            scripted_seizures: BTreeMap::new(),
            templates: Vec::new(),
            next_case: 0,
            tick_threads: 1,
            metrics: ss_obs::Registry::new(),
            recorder: ss_obs::FlightRecorder::disabled(),
            event_trail: Vec::new(),
        }
    }

    /// Points the tick plane's flight recorder — and with it the
    /// event-trail retention that powers `repro explain` — at `level`.
    /// Off by default so benches and plain studies pay nothing.
    pub fn set_trace(&mut self, level: ss_obs::TraceLevel) {
        self.recorder = ss_obs::FlightRecorder::new(level, TRACE_RING_CAP);
    }

    /// Campaign template accessor.
    pub fn template_of(&self, campaign: CampaignId) -> &StoreTemplate {
        &self.templates[campaign.index()]
    }

    /// Store row accessor.
    pub fn store(&self, id: StoreId) -> StoreRow<'_> {
        self.stores.row(id)
    }

    /// Campaign row accessor.
    pub fn campaign(&self, id: CampaignId) -> CampaignRow<'_> {
        self.campaigns.row(id)
    }

    /// Brand name accessor.
    pub fn brand_name(&self, id: BrandId) -> &'static str {
        self.brand_names[id.index()]
    }

    /// Ground-truth lookup: is this domain a doorway, and for whom?
    pub fn doorway_truth(&self, domain: DomainId) -> Option<(CampaignId, DoorwayRow<'_>)> {
        self.route.doorway(domain).map(|did| {
            let d = self.campaigns.doorway(did);
            (d.campaign, d)
        })
    }

    /// Convenience: the term text for a term id.
    pub fn term_text(&self, term: TermId) -> &str {
        &self.engine.terms()[term.index()].text
    }

    /// Whether `campaign` can settle payments on `day` under the payment
    /// intervention (§4.3.2 extension). Campaigns migrate to a surviving
    /// processor after the policy's migration window when one exists.
    pub fn payment_available(&self, campaign: CampaignId, day: SimDate) -> bool {
        let policy = &self.cfg.payment_policy;
        if !policy.enabled || day.day_index() < policy.start_day {
            return true;
        }
        let current = self.templates[campaign.index()].payment.name();
        if !policy.blocked.iter().any(|b| b == current) {
            return true;
        }
        // Blocked: has the campaign migrated yet?
        match policy.migration_days {
            Some(migration) if day.day_index() >= policy.start_day + migration => {
                // A surviving processor exists iff not all three are blocked.
                policy.blocked.len() < 3
            }
            _ => false,
        }
    }

    /// The packing slip of a physical delivery from `store_domain` (§4.5:
    /// the study "discovered the supplier site from the packing slip of two
    /// of our purchases"). This models a physical-world channel, not a web
    /// observation: it returns the supplier portal's domain when the
    /// store's campaign fulfills through the tracked supplier.
    pub fn packing_slip(&self, store_domain: &ss_types::DomainName) -> Option<String> {
        let id = self.domains.lookup(store_domain)?;
        let SiteKind::Storefront { store } = self.domains.get(id).kind else {
            return None;
        };
        let campaign = self.stores.row(store).campaign;
        self.campaigns.row(campaign).supplier_partner.then(|| {
            self.domains
                .get(self.supplier_domain)
                .name
                .as_str()
                .to_owned()
        })
    }

    /// Runs `tick` until (and including) `last`.
    pub fn run_until(&mut self, last: SimDate) {
        while self.day <= last {
            self.tick();
        }
    }

    /// Folds the engine's query-plane counters (`engine.serp_queries`,
    /// `engine.serp_cache_hits`) into the world's metric registry and
    /// zeroes them. Callers drain at commit-adjacent points — after each
    /// day's stages and before any checkpoint is written — so snapshots
    /// never carry undrained residue and a resumed run counts identically
    /// to an uninterrupted one.
    pub fn drain_engine_metrics(&mut self) {
        let (queries, cache_hits) = self.engine.take_serp_stats();
        if queries > 0 {
            self.metrics.count("engine.serp_queries", queries);
        }
        if cache_hits > 0 {
            self.metrics.count("engine.serp_cache_hits", cache_hits);
        }
        let (postings, pushes) = self.engine.take_walk_work();
        self.metrics
            .add_work("engine/serp", ss_obs::WorkKind::PostingsWalked, postings);
        self.metrics
            .add_work("engine/serp", ss_obs::WorkKind::SerpHeapPushes, pushes);
    }

    /// A deterministic digest of the whole committed world: domains and
    /// seizures, SERP state per monitored term, store counters and AWStats
    /// months, court cases, supplier ledger, rotation queues, and the
    /// clock. Two worlds with equal fingerprints (plus equal event logs
    /// and metrics) are observably identical — the tick thread-matrix
    /// tests assert this across worker counts.
    pub fn state_fingerprint(&self) -> u64 {
        fn fold(h: u64, v: u64) -> u64 {
            ss_types::rng::mix(h, v, 0x5ca1_ab1e)
        }
        fn fold_str(h: u64, s: &str) -> u64 {
            fold(h, ss_types::rng::hash_str(s))
        }
        let mut h: u64 = 0x5176_ce87_2e4c_7db1;
        h = fold(h, u64::from(self.day.day_index()));

        // Domains + seizures.
        h = fold(h, self.domains.len() as u64);
        for rec in self.domains.iter() {
            h = fold_str(h, rec.name.as_str());
            if let Some(s) = rec.seized {
                h = fold(h, u64::from(s.day.day_index()));
                h = fold(h, u64::from(s.case.0));
                h = fold(h, s.firm.index() as u64);
            }
        }

        // Engine ranking state, probed through every monitored term's SERP.
        // The uncached walk keeps the probe free of side effects: it must
        // not bump the query-plane counters or warm any epoch cache, or a
        // checkpoint-enabled run would diverge from an uncheckpointed one.
        for v in &self.verticals {
            for &term in &v.terms {
                let hits = self
                    .engine
                    .ranked_uncached(term, self.day, self.cfg.scale.serp_depth);
                for r in &hits {
                    h = fold(h, u64::from(r.domain.0));
                    h = fold(h, u64::from(r.rank) ^ (u64::from(r.hacked_label) << 32));
                }
            }
        }

        // Stores: counters, serving domain, AWStats months.
        for s in self.stores.iter() {
            h = fold(h, s.order_counter);
            h = fold(h, s.orders_accrued);
            h = fold(h, u64::from(s.current_domain.0));
            h = fold(
                h,
                u64::from(s.retired) ^ ((s.backup_pool.len() as u64) << 1),
            );
            h = fold(h, s.domain_history.len() as u64);
            for m in s.months {
                h = fold(
                    h,
                    m.visits ^ m.pages.rotate_left(16) ^ m.direct_visits.rotate_left(32),
                );
                h = fold(h, m.daily.len() as u64);
                for (host, n) in &m.referrers {
                    h = fold_str(h, host);
                    h = fold(h, *n);
                }
            }
        }

        // Court cases.
        for f in &self.firms {
            for c in &f.cases {
                h = fold(h, u64::from(c.id.0));
                h = fold(h, u64::from(c.day.day_index()));
                h = fold(h, c.domains.len() as u64);
                h = fold_str(h, &c.docket);
            }
        }

        // Supplier ledger.
        for r in &self.supplier.records {
            let status = match r.status {
                ShipStatus::Delivered => 0u64,
                ShipStatus::SeizedAtSource => 1,
                ShipStatus::SeizedAtDestination => 2,
                ShipStatus::Returned => 3,
                ShipStatus::InTransit => 4,
            };
            h = fold(
                h,
                r.order_no ^ (u64::from(r.date.day_index()) << 32) ^ status,
            );
            h = fold_str(h, &r.country);
        }

        // Outstanding rotation schedules.
        for (d, stores) in &self.pending_rotations {
            h = fold(h, u64::from(d.day_index()));
            for s in stores {
                h = fold(h, s.index() as u64);
            }
        }
        for (d, stores) in &self.proactive_rotations {
            h = fold(h, u64::from(d.day_index()));
            for s in stores {
                h = fold(h, s.index() as u64);
            }
        }
        h
    }
}

/// Deterministic uniform draw deciding whether a doorway is "elite"
/// (top-10 capable); compared against the vertical's elite probability.
pub(crate) fn elite_draw(seed: u64, domain: DomainId) -> f64 {
    ss_types::rng::unit_f64(ss_types::rng::mix(seed, 0xe117e, u64::from(domain.0)))
}

// ---- the Web façade ----

impl Fetcher for World {
    /// Serves one request as a pure read. The only state change a visit
    /// can imply — a checkout allocating the next order number — comes
    /// back as a [`SideEffect`] for [`Web::apply`] to commit.
    fn fetch(&self, req: &Request) -> (Response, Vec<SideEffect>) {
        let Some(domain) = self.domains.lookup(&req.url.host) else {
            return (Response::not_found(), Vec::new());
        };
        let record = self.domains.get(domain);

        // Seized domains serve the notice page regardless of prior kind.
        if let Some(seizure) = record.seized {
            if seizure.day <= self.day {
                return (self.serve_notice(domain, seizure), Vec::new());
            }
        }

        match record.kind {
            SiteKind::Legit { theme, brand } => {
                let ctx = legit::LegitCtx {
                    domain: record.name.as_str(),
                    theme,
                    brand,
                    seed: ss_types::rng::derive_seed(self.cfg.seed, record.name.as_str()),
                };
                (Response::ok(legit::page(&ctx)), Vec::new())
            }
            SiteKind::Doorway {
                campaign,
                compromised,
                cloak: mode,
                target_store,
            } => (
                self.serve_doorway(domain, campaign, compromised, mode, target_store, req),
                Vec::new(),
            ),
            SiteKind::Storefront { store } => self.serve_store(domain, store, req),
            SiteKind::Supplier => (self.serve_supplier(req), Vec::new()),
            SiteKind::OffstageStore => (
                Response::ok(ss_web::pagegen::legit::page(&legit::LegitCtx {
                    domain: record.name.as_str(),
                    theme: legit::LegitTheme::Retailer,
                    brand: "Louis Vuitton",
                    seed: ss_types::rng::derive_seed(self.cfg.seed, record.name.as_str()),
                })),
                Vec::new(),
            ),
        }
    }
}

impl Web for World {
    /// The single choke point for fetch-time mutation. Effects resolve
    /// against the current state, which is exactly the state the fetch
    /// that produced them saw (callers apply immediately after fetching).
    fn apply(&mut self, effects: Vec<SideEffect>) {
        for effect in effects {
            match effect {
                SideEffect::OrderAllocated { host } => {
                    let store =
                        self.domains
                            .lookup(&host)
                            .and_then(|d| match self.domains.get(d).kind {
                                SiteKind::Storefront { store } => Some(store),
                                _ => None,
                            });
                    match store {
                        Some(id) => {
                            self.stores.allocate_order(id);
                        }
                        None => debug_assert!(
                            false,
                            "OrderAllocated for {host}, which is not a storefront"
                        ),
                    }
                }
            }
        }
    }
}

impl World {
    fn serve_notice(&self, domain: DomainId, seizure: Seizure) -> Response {
        let firm = &self.firms[seizure.firm.index()];
        let case = firm.cases.iter().find(|c| c.id == seizure.case);
        let (docket, brand, schedule) = match case {
            Some(c) => (
                c.docket.clone(),
                self.brand_name(c.brand).to_owned(),
                c.domains
                    .iter()
                    .map(|d| self.domains.get(*d).name.as_str().to_owned())
                    .collect::<Vec<_>>(),
            ),
            None => (format!("{}-cv-00000", 14), "Unknown".to_owned(), Vec::new()),
        };
        Response::ok(notice::page(&notice::NoticeCtx {
            domain: self.domains.get(domain).name.as_str(),
            firm: &firm.name,
            case_id: &docket,
            brand: &brand,
            seized_domains: &schedule,
        }))
    }

    fn serve_doorway(
        &self,
        domain: DomainId,
        _campaign: CampaignId,
        compromised: bool,
        mode: CloakMode,
        target_store: StoreId,
        req: &Request,
    ) -> Response {
        let name = self.domains.get(domain).name.as_str();
        let did = self.route.doorway(domain).expect("doorway kind is routed");
        let d = self.campaigns.doorway(did);
        let live = d.is_live(self.day);
        let seed = ss_types::rng::derive_seed(self.cfg.seed, name);

        // Which term does this URL carry?
        let term = req
            .url
            .query_param("key")
            .and_then(|key| {
                d.terms
                    .iter()
                    .copied()
                    .find(|t| self.engine.terms()[t.index()].text == key)
            })
            .or_else(|| d.terms.first().copied());
        let term_text = term.map(|t| self.term_text(t)).unwrap_or_default();
        let vertical = &self.verticals[d.vertical.index()];
        let brand = vertical.spec.brands.first().copied().unwrap_or("luxury");

        // Backlinks: a few sibling doorways of the same campaign.
        let backlinks: Vec<String> = self
            .campaigns
            .row(d.campaign)
            .doorways
            .iter()
            .filter(|o| o.domain != domain)
            .take(4)
            .map(|o| self.domains.get(o.domain).name.as_str().to_owned())
            .collect();
        let ctx = doorway::DoorwayCtx {
            domain: name,
            term: term_text,
            brand,
            backlinks: &backlinks,
            seed,
        };

        // A dead doorway (cleaned or cohort-retired) shows its original
        // face again — or nothing, for attacker-registered names.
        if !live {
            return if compromised {
                Response::ok(doorway::original_content(&ctx))
            } else {
                Response::not_found()
            };
        }

        // NOTE: the redirect target intentionally comes from the (possibly
        // stale) `SiteKind::Doorway::target_store`, not the campaign-side
        // doorway row — repointing updates only the campaign's state.
        let st = self.stores.row(target_store);
        let target = Url::root(self.domains.get(st.current_domain).name.clone());
        match cloak::decide(mode, compromised, &target, req, cloak::SEARCH_HOSTS) {
            ServeDecision::SeoPage => Response::ok(doorway::seo_page(&ctx)),
            ServeDecision::HttpRedirect(to) => Response::redirect(to),
            ServeDecision::SeoPageWithJsRedirect(to) => {
                Response::ok(doorway::seo_page_with_js_redirect(&ctx, &to.to_string()))
            }
            ServeDecision::IframePage {
                target,
                obfuscation,
            } => Response::ok(doorway::iframe_page(&ctx, &target.to_string(), obfuscation)),
            ServeDecision::OriginalContent => Response::ok(doorway::original_content(&ctx)),
        }
    }

    fn serve_store(
        &self,
        domain: DomainId,
        store: StoreId,
        req: &Request,
    ) -> (Response, Vec<SideEffect>) {
        let st = self.stores.row(store);
        // Former (rotated-away, unseized) domains bounce to the current one.
        if st.current_domain != domain {
            return (
                Response::redirect(Url::root(self.domains.get(st.current_domain).name.clone())),
                Vec::new(),
            );
        }
        if st.retired || st.created > self.day {
            return (Response::not_found(), Vec::new());
        }
        let template = &self.templates[st.campaign.index()];
        let brands: Vec<&str> = st
            .brands
            .iter()
            .map(|b| self.brand_names[b.index()])
            .collect();
        let ctx = storefront::StoreCtx {
            domain: self.domains.get(domain).name.as_str(),
            store_name: st.name,
            template,
            brands: &brands,
            locale: st.locale,
            merchant_id: st.merchant_id,
            seed: st.seed,
        };
        let cookies = storefront::cookies(template);
        let path = req.url.path.as_str();

        if path == "/" {
            (
                Response::ok(storefront::home_page(&ctx)).with_cookies(cookies),
                Vec::new(),
            )
        } else if let Some(idx) = path.strip_prefix("/product/") {
            let idx: u32 = idx.parse().unwrap_or(0);
            (
                Response::ok(storefront::product_page(&ctx, idx)).with_cookies(cookies),
                Vec::new(),
            )
        } else if path == "/cart" {
            (
                Response::ok(storefront::product_page(&ctx, 0)).with_cookies(cookies),
                Vec::new(),
            )
        } else if path == "/checkout" {
            // The page shows the order number this visit would be issued;
            // the counter itself only advances when the caller commits the
            // effect through `Web::apply`.
            let order = st.order_counter + 1;
            let payment_ok = self.payment_available(st.campaign, self.day);
            let body = if payment_ok {
                storefront::checkout_page(&ctx, order)
            } else {
                // Order numbers are still handed out before payment, so
                // purchase-pair sampling keeps working; only real payment
                // fails (§4.3.2 extension).
                storefront::checkout_unavailable_page(&ctx, order)
            };
            (
                Response::ok(body).with_cookies(cookies),
                vec![SideEffect::OrderAllocated {
                    host: self.domains.get(domain).name.clone(),
                }],
            )
        } else if path == "/awstats/awstats.pl" {
            if !st.awstats_public {
                return (Response::not_found(), Vec::new());
            }
            let report_month = req.url.query_param("month");
            (
                self.serve_awstats(store, report_month.as_deref()),
                Vec::new(),
            )
        } else {
            (Response::not_found(), Vec::new())
        }
    }

    fn serve_awstats(&self, store: StoreId, month: Option<&str>) -> Response {
        let st = self.stores.row(store);
        let bucket = match month {
            Some(m) => {
                let mut it = m.split('-');
                let (Some(y), Some(mm)) = (it.next(), it.next()) else {
                    return Response::not_found();
                };
                let (Ok(y), Ok(mm)) = (y.parse::<i32>(), mm.parse::<u32>()) else {
                    return Response::not_found();
                };
                st.months.iter().find(|b| b.year_month == (y, mm))
            }
            None => st.months.last(),
        };
        let Some(bucket) = bucket else {
            return Response::not_found();
        };
        let report = awstats::TrafficReport {
            period: format!("{:04}-{:02}", bucket.year_month.0, bucket.year_month.1),
            unique_visitors: bucket.visits * 7 / 10,
            visits: bucket.visits,
            pages: bucket.pages,
            hits: bucket.pages * 4,
            referrers: bucket.referrers.clone(),
            direct_visits: bucket.direct_visits,
            daily: bucket
                .daily
                .iter()
                .map(|(d, v, p)| (d.to_string(), *v, *p))
                .collect(),
        };
        let site = self.domains.get(st.current_domain).name.as_str();
        Response::ok(awstats::page(site, &report))
    }

    fn serve_supplier(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => Response::ok(supplier_pages::home_page(self.supplier.recent(50))),
            "/track" => {
                let orders: Vec<u64> = req
                    .url
                    .query_param("orders")
                    .map(|s| s.split(',').filter_map(|o| o.trim().parse().ok()).collect())
                    .unwrap_or_default();
                let (found, missing) = self.supplier.lookup(&orders);
                Response::ok(supplier_pages::lookup_page(&found, &missing))
            }
            _ => Response::not_found(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn run_world(seed: u64, until: u32) -> World {
        let mut w = World::build(ScenarioConfig::tiny(seed)).unwrap();
        w.run_until(SimDate::from_day_index(until));
        w
    }

    #[test]
    fn ticks_advance_and_orders_accumulate() {
        let w = run_world(11, ss_types::CRAWL_START_DAY + 30);
        assert_eq!(w.day.day_index(), ss_types::CRAWL_START_DAY + 31);
        // During the crawl window campaigns are active; someone sold something.
        let base_total: u64 = 0;
        let total: u64 = w.stores.iter().map(|s| s.order_counter).sum();
        assert!(total > base_total);
        // AWStats buckets exist and carry daily rows.
        let busy = w
            .stores
            .iter()
            .find(|s| !s.months.is_empty())
            .expect("some traffic");
        assert!(!busy.months.last().unwrap().daily.is_empty());
    }

    #[test]
    fn doorways_reach_serps_during_active_windows() {
        let mut w = World::build(ScenarioConfig::tiny(5)).unwrap();
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 10));
        let day = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 10);
        let mut poisoned = 0usize;
        let mut total = 0usize;
        for v in &w.verticals {
            for &t in &v.terms {
                let serp = w.engine.serp(t, day, w.cfg.scale.serp_depth);
                total += serp.results.len();
                poisoned += serp
                    .results
                    .iter()
                    .filter(|r| w.doorway_truth(r.domain).is_some())
                    .count();
            }
        }
        assert!(total > 0);
        assert!(poisoned > 0, "no poisoned results at all");
        let frac = poisoned as f64 / total as f64;
        assert!(frac < 0.6, "poisoning implausibly total: {frac}");
    }

    #[test]
    fn fetch_serves_every_site_kind() {
        let mut w = run_world(7, ss_types::CRAWL_START_DAY + 5);
        // Legit.
        let legit = w
            .domains
            .iter()
            .find(|r| matches!(r.kind, SiteKind::Legit { .. }))
            .map(|r| r.name.clone())
            .unwrap();
        let (resp, effects) = w.fetch(&Request::browser(Url::root(legit)));
        assert_eq!(resp.status, 200);
        assert!(effects.is_empty(), "legit pages have no side effects");

        // Storefront home sets cookies and has cart/checkout. The store
        // must still hold its serving domain: a store whose domain was
        // seized serves the notice page instead (also 200, no cookies).
        let today = w.day;
        let store = w
            .stores
            .iter()
            .find(|s| {
                !s.retired && s.created < today && w.domains.get(s.current_domain).seized.is_none()
            })
            .unwrap();
        let host = w.domains.get(store.current_domain).name.clone();
        let (resp, effects) = w.fetch(&Request::browser(Url::root(host.clone())));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.cookies.len(), 3);
        assert!(resp.body.to_ascii_lowercase().contains("checkout"));
        assert!(effects.is_empty(), "browsing the home page orders nothing");

        // Checkout allocates monotone order numbers — once applied.
        let co = Url::new(host.clone(), "/checkout", "");
        let r1 = w.fetch_apply(&Request::browser(co.clone()));
        let r2 = w.fetch_apply(&Request::browser(co.clone()));
        let n1 = extract_order(&r1.body);
        let n2 = extract_order(&r2.body);
        assert_eq!(n2, n1 + 1);

        // An unapplied checkout fetch is a pure read: the world keeps
        // quoting the same next order number.
        let (r3, fx3) = w.fetch(&Request::browser(co.clone()));
        let (r4, _) = w.fetch(&Request::browser(co));
        assert_eq!(extract_order(&r3.body), n2 + 1);
        assert_eq!(extract_order(&r4.body), n2 + 1);
        assert_eq!(fx3, vec![ss_web::SideEffect::OrderAllocated { host }]);

        // Supplier portal.
        let sup = w.domains.get(w.supplier_domain).name.clone();
        let (resp, _) = w.fetch(&Request::browser(Url::root(sup)));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("Order Tracking"));

        // Unknown domain.
        let (resp, _) = w.fetch(&Request::browser(
            Url::parse("http://no-such-host.com/").unwrap(),
        ));
        assert_eq!(resp.status, 404);
    }

    fn extract_order(body: &str) -> u64 {
        let doc = ss_web::Document::parse(body);
        doc.by_id("order-no")
            .unwrap()
            .text_content()
            .parse()
            .unwrap()
    }

    #[test]
    fn doorway_cloaks_by_visitor_class() {
        let w = run_world(13, ss_types::CRAWL_START_DAY + 20);
        let day = w.day;
        // A live doorway.
        let (domain, _) = w
            .campaigns
            .iter()
            .flat_map(|c| c.doorways.iter())
            .find(|d| d.is_live(day))
            .map(|d| (d.domain, d.vertical))
            .expect("some live doorway");
        let host = w.domains.get(domain).name.clone();
        let url = Url::root(host);
        let (as_bot, _) = w.fetch(&Request::crawler(url.clone()));
        let (as_search_user, _) = w.fetch(&Request::browser_from(
            url.clone(),
            Url::parse("http://google.com/search?q=x").unwrap(),
        ));
        assert_eq!(as_bot.status, 200);
        // One of the cloaking signatures must show: different bytes, an HTTP
        // redirect, or an embedded payload script.
        let cloaked = as_search_user.is_redirect()
            || as_search_user.body != as_bot.body
            || as_search_user.body.contains("<script>");
        assert!(cloaked);
    }

    #[test]
    fn seizures_fire_and_stores_rotate() {
        let w = run_world(3, 240);
        let cases = w.events.cases().count();
        assert!(cases > 0, "no court cases by day 240");
        let seized = w.domains.iter().filter(|r| r.seized.is_some()).count();
        assert!(seized > 0);
        // The PHP?P= scripted seizure on day 219 triggers a reactive
        // rotation within its 1-day reaction window.
        let phpp = w.campaigns.iter().find(|c| c.name == "PHP?P=").unwrap();
        let uk_store = phpp
            .stores
            .iter()
            .copied()
            .find(|s| w.store(*s).name.contains("abercrombie uk"))
            .expect("scripted abercrombie-uk store");
        let rotations = w.events.rotations_of(uk_store);
        assert!(!rotations.is_empty(), "abercrombie-uk never rotated");
        assert_eq!(
            rotations[0].0.day_index(),
            220,
            "rotation lands a day after the seizure"
        );
        assert!(rotations[0].3, "rotation must be reactive");
    }

    #[test]
    fn seized_domain_serves_notice_with_court_doc() {
        let w = run_world(3, 240);
        let domain = w
            .domains
            .iter()
            .find(|r| r.seized.is_some() && matches!(r.kind, SiteKind::Storefront { .. }))
            .map(|r| r.id)
            .expect("a seized storefront");
        let host = w.domains.get(domain).name.clone();
        let (resp, effects) = w.fetch(&Request::browser(Url::root(host)));
        assert!(effects.is_empty(), "seizure notices allocate nothing");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("has been seized"));
        let doc = ss_web::Document::parse(&resp.body);
        assert!(doc.by_id("court-doc").is_some());
    }

    #[test]
    fn supplier_accumulates_records_until_window_end() {
        let w = run_world(9, ss_types::SUPPLIER_END_DAY + 20);
        assert!(!w.supplier.records.is_empty());
        // Tracking dates trail the order day by at most the transit bound.
        let last = w.supplier.records.last().unwrap();
        assert!(last.date.day_index() <= w.day.day_index() + 18);
        // The bulk external volume stops with the record window, so most of
        // the ledger predates it.
        let in_window = w
            .supplier
            .records
            .iter()
            .filter(|r| r.date.day_index() <= ss_types::SUPPLIER_END_DAY + 18)
            .count();
        assert!(in_window as f64 > 0.9 * w.supplier.records.len() as f64);
    }

    #[test]
    fn world_is_deterministic_end_to_end() {
        let a = run_world(21, ss_types::CRAWL_START_DAY + 15);
        let b = run_world(21, ss_types::CRAWL_START_DAY + 15);
        let ta: u64 = a.stores.iter().map(|s| s.order_counter).sum();
        let tb: u64 = b.stores.iter().map(|s| s.order_counter).sum();
        assert_eq!(ta, tb);
        assert_eq!(a.events.all().len(), b.events.all().len());
        assert_eq!(a.supplier.records.len(), b.supplier.records.len());
    }
}

#[cfg(test)]
mod payment_tests {
    use super::*;
    use crate::scenario::{PaymentPolicy, ScenarioConfig};

    fn policy(blocked: Vec<&str>, migration: Option<u32>) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::tiny(77);
        cfg.payment_policy = PaymentPolicy {
            enabled: true,
            start_day: ss_types::CRAWL_START_DAY + 10,
            blocked: blocked.into_iter().map(str::to_owned).collect(),
            migration_days: migration,
        };
        cfg
    }

    #[test]
    fn blocking_all_processors_freezes_customer_orders() {
        let cfg = policy(vec!["realypay", "mallpayment", "globalbill"], Some(5));
        let mut w = World::build(cfg).unwrap();
        let start = ss_types::CRAWL_START_DAY;
        w.run_until(SimDate::from_day_index(start + 9));
        let before: u64 = w.stores.iter().map(|s| s.order_counter).sum();
        w.run_until(SimDate::from_day_index(start + 30));
        let after: u64 = w.stores.iter().map(|s| s.order_counter).sum();
        // With every processor blocked and no survivor to migrate to, no
        // customer order completes after the start day.
        assert_eq!(
            before, after,
            "orders must freeze under a full payment block"
        );
    }

    #[test]
    fn migration_to_surviving_processor_restores_orders() {
        let cfg = policy(vec!["realypay"], Some(3));
        let mut w = World::build(cfg).unwrap();
        let day = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 30);
        w.run_until(day);
        // Every campaign settles again: either it never used realypay, or
        // it migrated after 3 days.
        for c in w.campaigns.iter() {
            assert!(w.payment_available(c.id, day), "{} still blocked", c.name);
        }
        // But during the migration window, realypay campaigns were dark.
        let mid = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 11);
        let blocked_then = w
            .campaigns
            .iter()
            .filter(|c| !w.payment_available(c.id, mid))
            .count();
        assert!(blocked_then > 0, "someone must have used realypay");
    }

    #[test]
    fn blocked_checkout_still_allocates_order_numbers() {
        let cfg = policy(vec!["realypay", "mallpayment", "globalbill"], None);
        let mut w = World::build(cfg).unwrap();
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 15));
        let today = w.day;
        let store = w
            .stores
            .iter()
            .find(|s| {
                !s.retired && s.created < today && w.domains.get(s.current_domain).seized.is_none()
            })
            .unwrap();
        let host = w.domains.get(store.current_domain).name.clone();
        let url = Url::new(host, "/checkout", "");
        let r1 = w.fetch_apply(&Request::browser(url.clone()));
        let r2 = w.fetch_apply(&Request::browser(url));
        assert!(
            r1.body.contains("payment-unavailable"),
            "body: {}",
            &r1.body[..r1.body.len().min(400)]
        );
        let doc1 = ss_web::Document::parse(&r1.body);
        let doc2 = ss_web::Document::parse(&r2.body);
        let n1: u64 = doc1
            .by_id("order-no")
            .unwrap()
            .text_content()
            .parse()
            .unwrap();
        let n2: u64 = doc2
            .by_id("order-no")
            .unwrap()
            .text_content()
            .parse()
            .unwrap();
        assert_eq!(n2, n1 + 1, "purchase-pair sampling must keep working");
        assert!(
            doc1.find_all("form").is_empty(),
            "no payment form when blocked"
        );
        let _ = doc2;
    }
}

//! # ss-eco
//!
//! The agent-based simulation of the counterfeit-luxury SEO ecosystem —
//! the stand-in for the 2013–2014 web the paper measured.
//!
//! The world contains, as live agents with state and schedules:
//!
//! * **52 classified SEO campaigns** (plus a long tail of "shadow"
//!   campaigns the labeled set never covers), each operating doorway fleets,
//!   storefront fleets with backup-domain pools, cloaking configurations,
//!   and bursty SEO activity windows ([`campaign`]);
//! * **storefronts** with monotone order counters, localized variants,
//!   AWStats logs, merchant accounts and domain-rotation agility
//!   ([`store`]);
//! * **users** who query, click by rank, browse, and occasionally buy
//!   ([`traffic`]);
//! * **the search engine's anti-abuse pipeline** (delayed detection →
//!   demotion + root-only hacked labels) wired to `ss-search`'s mechanisms;
//! * **brand-protection firms** filing periodic bulk seizure cases, and the
//!   campaigns' counter-reaction of re-pointing doorways within days
//!   ([`legal`]);
//! * **a supplier** fulfilling partnered campaigns' orders and exposing the
//!   tracking portal the paper scraped ([`supplier`]).
//!
//! [`world::World`] composes all of it behind a plan/commit day-tick loop
//! ([`plan`]: pure stage planners over `&World`, keyed RNG sub-streams, a
//! single `apply_plan` reducer, optional worker fan-out), implements
//! `ss_web::Web` so the measurement pipeline can fetch pages exactly as the
//! paper's crawlers did, and keeps a ground-truth [`events`] log that the
//! methodology-validation experiments score against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod build;
pub mod campaign;
pub mod domains;
pub mod events;
pub mod legal;
pub mod plan;
pub mod scenario;
pub mod snapshot;
pub mod store;
pub mod supplier;
pub mod tables;
pub mod traffic;
pub mod world;

pub use plan::{TickStage, TrailEvent, WorldEvent};
pub use scenario::{Scale, ScenarioConfig};
pub use tables::{
    CampaignRow, CampaignTable, DomainRoute, DoorwayRow, DoorwaySlice, DoorwayTable, StoreRow,
    StoreTable,
};
pub use world::World;

//! The user-traffic model: impressions, rank-biased clicks, conversions.
//!
//! §4.4/§5.2.3 give the calibration anchors: visits convert to orders at
//! ~0.7%, a visit generates ~5.6 HTML page fetches, ~60% of visits carry a
//! referrer, and order volume correlates with SERP presence — top-10
//! presence mattering most, but a fat top-100 tail still sustaining volume
//! (the MOONKIS observation). Traffic is aggregated statistically per
//! (term, day); only the measurement pipeline fetches real pages.

use rand::Rng;
use ss_types::rng::SimRng;

/// Click-through rate by 1-based SERP rank.
///
/// A standard heavy-headed curve: rank 1 ≈ 28%, steep power-law decay
/// through the top 10, then a thin but non-zero tail across ranks 11–100.
/// The tail is what makes aggressive demotion (out of the top 100, not just
/// the top 10) necessary — §5.2.1's conclusion.
pub fn ctr(rank: u32) -> f64 {
    match rank {
        0 => 0.0,
        1..=10 => 0.28 * f64::from(rank).powf(-1.35),
        11..=100 => 0.003 * (1.0 - (f64::from(rank) - 11.0) / 120.0),
        _ => 0.0,
    }
}

/// Samples a Poisson variate (Knuth for small λ, normal approximation for
/// large λ — adequate for traffic volumes).
pub fn poisson(rng: &mut SimRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let u: f64 = rng.gen();
        let v: f64 = rng.gen();
        let z = (-2.0 * u.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as u64
    }
}

/// Samples a binomial count via Poisson approximation when appropriate or
/// direct Bernoulli summation for small n.
pub fn binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64
    } else {
        poisson(rng, n as f64 * p).min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::rng::sub_rng;

    #[test]
    fn ctr_decays_and_has_top100_tail() {
        assert!(ctr(1) > ctr(2));
        assert!(ctr(2) > ctr(10));
        assert!(ctr(10) > ctr(11));
        assert!(ctr(50) > 0.0);
        assert!(ctr(100) > 0.0);
        assert_eq!(ctr(101), 0.0);
        assert_eq!(ctr(0), 0.0);
    }

    #[test]
    fn top10_dominates_but_tail_matters_in_aggregate() {
        let top10: f64 = (1..=10).map(ctr).sum();
        let tail: f64 = (11..=100).map(ctr).sum();
        assert!(top10 > tail, "top10 {top10} vs tail {tail}");
        // …but 90 tail slots together still carry meaningful traffic —
        // MOONKIS kept selling from the tail alone (§5.2.1).
        assert!(tail > 0.25 * top10, "tail {tail} too thin vs {top10}");
    }

    #[test]
    fn poisson_matches_mean() {
        let mut rng = sub_rng(1, "p");
        for lambda in [0.5, 4.0, 80.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "λ={lambda} mean={mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn binomial_respects_bounds_and_mean() {
        let mut rng = sub_rng(2, "b");
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        let total: u64 = (0..5_000).map(|_| binomial(&mut rng, 40, 0.25)).sum();
        let mean = total as f64 / 5_000.0;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
        for _ in 0..200 {
            assert!(binomial(&mut rng, 1000, 0.001) <= 1000);
        }
    }
}

//! Storefront state: order counters, domain histories, AWStats logs.

use ss_types::{BrandId, CampaignId, DomainId, SimDate, StoreId};
use ss_web::pagegen::storefront::StoreTemplate;

/// Monthly AWStats bucket for one store (what its public report exposes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonthStats {
    /// `(year, month)` of the bucket.
    pub year_month: (i32, u32),
    /// Visits this month.
    pub visits: u64,
    /// HTML pages served this month.
    pub pages: u64,
    /// Referrer host → visits (doorways and the search engine).
    pub referrers: Vec<(String, u64)>,
    /// Visits with no referrer.
    pub direct_visits: u64,
    /// Per-day `(day, visits, pages)` rows — AWStats' "days of month".
    pub daily: Vec<(SimDate, u64, u64)>,
}

impl MonthStats {
    /// Adds a referrer visit.
    pub fn add_referrer(&mut self, host: &str, n: u64) {
        match self.referrers.iter_mut().find(|(h, _)| h == host) {
            Some((_, c)) => *c += n,
            None => self.referrers.push((host.to_owned(), n)),
        }
    }
}

/// A logical counterfeit store. The *store* is the durable entity; its
/// domain changes under rotation (§5.2.3's coco*.com storefront used three
/// domains in three months).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreState {
    /// Id.
    pub id: StoreId,
    /// Operating campaign.
    pub campaign: CampaignId,
    /// Display name.
    pub name: String,
    /// Brands on sale.
    pub brands: Vec<BrandId>,
    /// Locale ("us", "uk", …) — campaigns run localized variants (§3.1.2).
    pub locale: String,
    /// Current serving domain.
    pub current_domain: DomainId,
    /// Full domain history `(first_day, domain)`, current last.
    pub domain_history: Vec<(SimDate, DomainId)>,
    /// Backup domains not yet used (pre-registered against seizures).
    pub backup_pool: Vec<DomainId>,
    /// Monotone order counter (order numbers allocated so far).
    pub order_counter: u64,
    /// Orders accrued during the simulation (excludes the random counter
    /// base the store started with) — the ground-truth volume metric.
    pub orders_accrued: u64,
    /// Merchant id with the payment processor.
    pub merchant_id: String,
    /// Whether the AWStats report is publicly reachable (§4.4: 647 of
    /// thousands of stores leaked theirs).
    pub awstats_public: bool,
    /// Day the store went live.
    pub created: SimDate,
    /// Monthly traffic stats, newest last.
    pub months: Vec<MonthStats>,
    /// Per-store render seed.
    pub seed: u64,
    /// Whether the campaign has stopped operating this store.
    pub retired: bool,
}

impl StoreState {
    /// Allocates the next order number (monotonically increasing — the
    /// invariant the purchase-pair technique (§4.3.1) rests on).
    pub fn allocate_order(&mut self) -> u64 {
        self.order_counter += 1;
        self.orders_accrued += 1;
        self.order_counter
    }

    /// Bulk-advances the counter by `n` customer orders.
    pub fn add_orders(&mut self, n: u64) {
        self.order_counter += n;
        self.orders_accrued += n;
    }

    /// Records a day of traffic into the right monthly bucket.
    pub fn record_traffic(
        &mut self,
        day: SimDate,
        visits: u64,
        pages: u64,
        referred: &[(String, u64)],
        direct: u64,
    ) {
        let (y, m, _) = day.ymd();
        if self.months.last().map(|b| b.year_month) != Some((y, m)) {
            self.months.push(MonthStats {
                year_month: (y, m),
                ..MonthStats::default()
            });
        }
        let bucket = self.months.last_mut().expect("just ensured");
        bucket.visits += visits;
        bucket.pages += pages;
        bucket.direct_visits += direct;
        for (host, n) in referred {
            bucket.add_referrer(host, *n);
        }
        bucket.daily.push((day, visits, pages));
    }

    /// Rotates to the next backup domain; returns `(old, new)` if a backup
    /// was available.
    pub fn rotate_domain(&mut self, day: SimDate) -> Option<(DomainId, DomainId)> {
        let next = if self.backup_pool.is_empty() {
            return None;
        } else {
            self.backup_pool.remove(0)
        };
        let old = self.current_domain;
        self.current_domain = next;
        self.domain_history.push((day, next));
        Some((old, next))
    }

    /// The monthly bucket covering `day`, if recorded.
    pub fn month_for(&self, day: SimDate) -> Option<&MonthStats> {
        let (y, m, _) = day.ymd();
        self.months.iter().find(|b| b.year_month == (y, m))
    }

    /// The campaign template used for rendering (derived, not stored, so
    /// sibling stores always agree with their campaign).
    pub fn template(&self, world_seed: u64, campaign_name: &str) -> StoreTemplate {
        StoreTemplate::for_campaign(campaign_name, world_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> StoreState {
        StoreState {
            id: StoreId(0),
            campaign: CampaignId(0),
            name: "Coco Vip Bags".into(),
            brands: vec![BrandId(0)],
            locale: "us".into(),
            current_domain: DomainId(10),
            domain_history: vec![(SimDate::EPOCH, DomainId(10))],
            backup_pool: vec![DomainId(11), DomainId(12)],
            order_counter: 5_000,
            orders_accrued: 0,
            merchant_id: "m-1".into(),
            awstats_public: true,
            created: SimDate::EPOCH,
            months: Vec::new(),
            seed: 9,
            retired: false,
        }
    }

    #[test]
    fn order_numbers_are_monotone() {
        let mut s = store();
        let a = s.allocate_order();
        s.add_orders(10);
        let b = s.allocate_order();
        assert_eq!(a, 5_001);
        assert_eq!(b, 5_012);
        assert!(b > a);
    }

    #[test]
    fn rotation_walks_the_backup_pool() {
        let mut s = store();
        let (old, new) = s.rotate_domain(SimDate::from_day_index(100)).unwrap();
        assert_eq!((old, new), (DomainId(10), DomainId(11)));
        assert_eq!(s.current_domain, DomainId(11));
        let (_, new2) = s.rotate_domain(SimDate::from_day_index(150)).unwrap();
        assert_eq!(new2, DomainId(12));
        assert!(
            s.rotate_domain(SimDate::from_day_index(160)).is_none(),
            "pool exhausted"
        );
        assert_eq!(s.domain_history.len(), 3);
    }

    #[test]
    fn traffic_buckets_by_month() {
        let mut s = store();
        let jan = SimDate::from_ymd(2014, 1, 30).unwrap();
        let feb = SimDate::from_ymd(2014, 2, 1).unwrap();
        s.record_traffic(jan, 100, 560, &[("google.com".into(), 40)], 60);
        s.record_traffic(jan + 1, 50, 280, &[("google.com".into(), 10)], 40);
        s.record_traffic(feb, 70, 392, &[("door.com".into(), 30)], 40);
        assert_eq!(s.months.len(), 2);
        let jan_stats = s.month_for(jan).unwrap();
        assert_eq!(jan_stats.visits, 150);
        assert_eq!(jan_stats.referrers, vec![("google.com".to_owned(), 50)]);
        assert_eq!(jan_stats.daily.len(), 2);
        assert_eq!(s.month_for(feb).unwrap().visits, 70);
    }
}

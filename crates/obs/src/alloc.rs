//! The counting global allocator: per-thread allocation metering.
//!
//! Every crate that links `ss-obs` gets [`CountingAlloc`] installed as
//! its `#[global_allocator]` — a zero-overhead-when-idle wrapper around
//! [`System`] that bumps three thread-local counters (allocation count,
//! bytes requested, free count) on every heap operation. The counters
//! are plain monotonic `Cell`s: no atomics, no cross-thread sharing, no
//! locks, so the meter never perturbs the allocation pattern it is
//! measuring.
//!
//! [`CostScope`](crate::CostScope) guards read the counters before and
//! after a phase to attribute heap work to that phase. Code whose
//! allocation pattern is legitimately thread-schedule-dependent (a
//! shared compile cache, where *which* thread takes the miss is a race)
//! wraps itself in [`pause_metering`] so the unstable allocations count
//! nowhere and the scoped totals stay bit-identical at any thread count.
//!
//! `realloc` is metered as one allocation of the new size plus one free
//! — the accounting identity that keeps `allocs - frees` equal to the
//! number of live blocks.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static METER: Meter = const {
        Meter {
            allocs: Cell::new(0),
            bytes: Cell::new(0),
            frees: Cell::new(0),
            pause: Cell::new(0),
        }
    };
}

struct Meter {
    allocs: Cell<u64>,
    bytes: Cell<u64>,
    frees: Cell<u64>,
    pause: Cell<u32>,
}

#[inline]
fn on_alloc(size: usize) {
    // `try_with` rather than `with`: the allocator runs during TLS
    // teardown, when the meter may already be destroyed.
    let _ = METER.try_with(|m| {
        if m.pause.get() == 0 {
            m.allocs.set(m.allocs.get() + 1);
            m.bytes.set(m.bytes.get() + size as u64);
        }
    });
}

#[inline]
fn on_free() {
    let _ = METER.try_with(|m| {
        if m.pause.get() == 0 {
            m.frees.set(m.frees.get() + 1);
        }
    });
}

/// A [`System`] wrapper that counts allocations per thread. Installed as
/// the global allocator by this crate; read it through
/// [`thread_alloc_counts`] or, at a higher level, through
/// [`CostScope`](crate::CostScope) phase attribution.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`; the counter bumps touch only
// thread-local `Cell`s and never allocate, recurse, or unwind.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_free();
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        on_free();
        System.realloc(ptr, layout, new_size)
    }
}

#[allow(unsafe_code)]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// This thread's monotonic `(allocations, bytes requested, frees)` so
/// far. Deltas of this triple around a region are the region's heap
/// traffic; the absolute values include everything since thread start.
pub fn thread_alloc_counts() -> (u64, u64, u64) {
    METER
        .try_with(|m| (m.allocs.get(), m.bytes.get(), m.frees.get()))
        .unwrap_or((0, 0, 0))
}

/// RAII guard from [`pause_metering`]; re-enables the meter on drop.
/// Nests — the meter resumes when the outermost guard drops.
#[must_use = "metering resumes as soon as the guard drops"]
pub struct MeterPause;

/// Suspends allocation metering on this thread until the returned guard
/// drops. Use around code whose allocation pattern is thread-schedule-
/// dependent (e.g. a shared cache's miss path, where which thread
/// compiles is a race) so deterministic phase totals stay bit-identical
/// at any thread count.
pub fn pause_metering() -> MeterPause {
    let _ = METER.try_with(|m| m.pause.set(m.pause.get() + 1));
    MeterPause
}

impl Drop for MeterPause {
    fn drop(&mut self) {
        let _ = METER.try_with(|m| m.pause.set(m.pause.get().saturating_sub(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::proptest;

    proptest! {
        /// The meter is monotonic under any allocation/free sequence:
        /// no counter ever decreases, every allocation bumps the alloc
        /// count and at least its requested bytes, every drop is freed.
        #[test]
        fn alloc_counters_are_monotonic(
            sizes in proptest::collection::vec(1usize..4096, 1..32)
        ) {
            let (mut a, mut b, mut f) = thread_alloc_counts();
            for sz in &sizes {
                let v: Vec<u8> = Vec::with_capacity(*sz);
                let (a1, b1, f1) = thread_alloc_counts();
                assert!(a1 > a, "allocation counted");
                assert!(b1 >= b + *sz as u64, "requested bytes counted");
                assert!(f1 >= f, "frees never decrease");
                drop(v);
                let (a2, b2, f2) = thread_alloc_counts();
                assert!(a2 >= a1 && b2 >= b1, "alloc columns never decrease");
                assert!(f2 > f1, "the free was counted");
                (a, b, f) = (a2, b2, f2);
            }
        }
    }

    #[test]
    fn counts_rise_with_allocations_and_frees() {
        let (a0, b0, f0) = thread_alloc_counts();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let (a1, b1, _) = thread_alloc_counts();
        assert!(a1 > a0, "an allocation was counted");
        assert!(b1 >= b0 + 4096, "requested bytes were counted");
        drop(v);
        let (_, _, f2) = thread_alloc_counts();
        assert!(f2 > f0, "the free was counted");
    }

    #[test]
    fn pause_suppresses_counting_and_nests() {
        let outer = pause_metering();
        let (a0, b0, f0) = thread_alloc_counts();
        {
            let inner = pause_metering();
            let v: Vec<u8> = Vec::with_capacity(1024);
            drop(v);
            drop(inner);
            // Still paused: the outer guard is live.
            let v: Vec<u8> = Vec::with_capacity(1024);
            drop(v);
        }
        assert_eq!(thread_alloc_counts(), (a0, b0, f0));
        drop(outer);
        let v: Vec<u8> = Vec::with_capacity(1024);
        drop(v);
        let (a1, _, _) = thread_alloc_counts();
        assert!(a1 > a0, "metering resumed after the last guard dropped");
    }
}

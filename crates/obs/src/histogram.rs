//! Fixed log-scale histograms over unsigned integer observations.
//!
//! Buckets are powers of two: bucket 0 holds the value `0`, bucket `i`
//! (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`. The bounds are fixed at
//! compile time, so merging two histograms is a plain element-wise sum —
//! associative, commutative, and bit-exact regardless of merge order
//! (observations are integers; no floating-point accumulation anywhere).
//! Quantiles are bucket-resolution approximations: the reported `p50`/`p95`
//! is the inclusive upper bound of the bucket where the cumulative count
//! crosses the rank. `min`, `max`, and `sum` are exact.

use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};

/// Number of buckets: one for zero plus one per bit width of `u64`.
pub const BUCKETS: usize = 65;

/// A mergeable log-scale histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for zero, else the value's bit width.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one. Element-wise integer sums,
    /// so the result is independent of merge order and grouping.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bucket-resolution quantile: the upper bound of the bucket where the
    /// cumulative count reaches `q · count`. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                // The extreme buckets are exact: nothing above max or
                // below min can be in them.
                return Some(bucket_bound(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket resolution).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (bucket_bound(i), *n))
            .collect()
    }
}

impl Snapshot for Histogram {
    const TAG: &'static str = "histogram";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        // Sparse bucket encoding: almost all of the 65 buckets are empty
        // in practice.
        let nonzero: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (i, *n))
            .collect();
        w.put_len(nonzero.len());
        for (i, n) in nonzero {
            w.put_u8(i as u8);
            w.put_u64(n);
        }
        w.put_u64(self.count);
        w.put_u128(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut h = Histogram::new();
        let n = r.get_len()?;
        for _ in 0..n {
            let i = r.get_u8()? as usize;
            if i >= BUCKETS {
                return Err(SnapshotError::Corrupt(format!("bucket index {i}")));
            }
            h.buckets[i] = r.get_u64()?;
        }
        h.count = r.get_u64()?;
        h.sum = r.get_u128()?;
        h.min = r.get_u64()?;
        h.max = r.get_u64()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(Histogram::decode(&h.encode()).unwrap(), h);
        let empty = Histogram::new();
        assert_eq!(Histogram::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn buckets_are_log_scale() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_are_exact_quantiles_bucketed() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        // p50 rank 3 → value 3 lives in bucket [2,3] → bound 3.
        assert_eq!(h.p50(), Some(3));
        // p95 rank 5 → bucket of 1000 is [512,1023], capped at max.
        assert_eq!(h.p95(), Some(1000));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn merge_equals_interleaved_observation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..200u64 {
            if v % 3 == 0 {
                a.observe(v * 7)
            } else {
                b.observe(v * 7)
            }
            whole.observe(v * 7);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // And the other order, bit-identically.
        let mut merged2 = b.clone();
        merged2.merge(&a);
        assert_eq!(merged2, whole);
    }
}

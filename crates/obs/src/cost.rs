//! The cost-model profiler: deterministic work accounting per phase.
//!
//! Wall-clock profiles are noise on shared hardware, so perf regressions
//! here gate on *countable work* instead: a [`CostScope`] meters the
//! heap traffic (allocations / bytes / frees, via the counting global
//! allocator in [`crate::alloc`]) and typed work units ([`WorkKind`])
//! performed inside a hierarchical phase like `crawl/render`. Scopes
//! nest exactly like spans — each thread keeps a stack of frames, a
//! closing frame's inclusive heap delta is credited to its parent, and
//! the recorded columns are **exclusive** (self) values, so summing any
//! column over all phases never double-counts.
//!
//! ## Determinism rule
//!
//! Two scope flavors encode the determinism contract:
//!
//! - [`Registry::cost_scope`](crate::Registry::cost_scope) — full
//!   metering. Only for code that is a *stable parallel unit*: the same
//!   work lands in the same scope on the same thread no matter the
//!   thread count (the crawl's per-vertical phases, recorded into
//!   per-vertical registries merged in vertical order).
//! - [`Registry::work_scope`](crate::Registry::work_scope) — work units
//!   and wall time only; the enter and allocation columns stay zero.
//!   For driver-side code whose entry counts or heap pattern would be
//!   thread-schedule-dependent.
//!
//! Everything except `total_ns`/`self_ns` is deterministic and appears
//! in [`Registry::costs_value`](crate::Registry::costs_value) — the
//! export goldens compare. Wall time is exported separately and never
//! participates in determinism checks.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::alloc::{pause_metering, thread_alloc_counts};
use crate::Registry;

/// The typed work-unit ledger: each variant is one countable unit of
/// work the pipeline performs at a known choke point. Charged into the
/// innermost open scope via [`charge`], or directly onto a phase row via
/// [`Registry::add_work`](crate::Registry::add_work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum WorkKind {
    /// Pages fetched by the crawler (crawler + user-agent fetches).
    DocsFetched,
    /// Distinct scripts compiled by the JS bytecode cache.
    JsCompiles,
    /// Bytecode VM step-budget units consumed executing scripts.
    JsVmSteps,
    /// Postings entries walked by the SERP top-k heap walk.
    PostingsWalked,
    /// Candidate pushes into the SERP top-k heap.
    SerpHeapPushes,
    /// PSR rows scanned by the fused analysis pass.
    PsrRowsScanned,
    /// World events emitted by tick planners.
    EventsPlanned,
    /// World events applied at the commit choke point.
    EventsApplied,
}

impl WorkKind {
    /// Number of work kinds (the width of [`CostStats::work`]).
    pub const COUNT: usize = 8;

    /// Every kind, in column order.
    pub const ALL: [WorkKind; WorkKind::COUNT] = [
        WorkKind::DocsFetched,
        WorkKind::JsCompiles,
        WorkKind::JsVmSteps,
        WorkKind::PostingsWalked,
        WorkKind::SerpHeapPushes,
        WorkKind::PsrRowsScanned,
        WorkKind::EventsPlanned,
        WorkKind::EventsApplied,
    ];

    /// The stable snake_case column name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            WorkKind::DocsFetched => "docs_fetched",
            WorkKind::JsCompiles => "js_compiles",
            WorkKind::JsVmSteps => "js_vm_steps",
            WorkKind::PostingsWalked => "postings_walked",
            WorkKind::SerpHeapPushes => "serp_heap_pushes",
            WorkKind::PsrRowsScanned => "psr_rows_scanned",
            WorkKind::EventsPlanned => "events_planned",
            WorkKind::EventsApplied => "events_applied",
        }
    }
}

/// Aggregated cost for one phase path. All columns except the two
/// nanosecond fields are deterministic; merging is pure integer
/// addition, so per-worker registries merged in any fixed order
/// reproduce the single-threaded profile bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostStats {
    /// Completed metered scopes (0 for work-only scopes, whose entry
    /// count may be thread-dependent).
    pub enters: u64,
    /// Heap allocations performed inside the phase (exclusive of child
    /// phases; 0 for work-only scopes).
    pub allocs: u64,
    /// Heap bytes requested inside the phase (exclusive; 0 for
    /// work-only scopes).
    pub bytes: u64,
    /// Heap frees inside the phase (exclusive; 0 for work-only scopes).
    pub frees: u64,
    /// Work units by [`WorkKind`], charged to the innermost open scope.
    pub work: [u64; WorkKind::COUNT],
    /// Wall-clock nanoseconds, inclusive of children. **Not**
    /// deterministic — excluded from goldens.
    pub total_ns: u64,
    /// Wall-clock nanoseconds, children subtracted. **Not**
    /// deterministic — excluded from goldens.
    pub self_ns: u64,
}

impl Default for CostStats {
    fn default() -> Self {
        CostStats {
            enters: 0,
            allocs: 0,
            bytes: 0,
            frees: 0,
            work: [0; WorkKind::COUNT],
            total_ns: 0,
            self_ns: 0,
        }
    }
}

impl CostStats {
    /// Folds another phase aggregate into this one (integer addition —
    /// associative and commutative).
    pub fn merge(&mut self, other: &CostStats) {
        self.enters = self.enters.saturating_add(other.enters);
        self.allocs = self.allocs.saturating_add(other.allocs);
        self.bytes = self.bytes.saturating_add(other.bytes);
        self.frees = self.frees.saturating_add(other.frees);
        for (w, o) in self.work.iter_mut().zip(other.work.iter()) {
            *w = w.saturating_add(*o);
        }
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
    }

    /// Sum of every work-unit column.
    pub fn work_total(&self) -> u64 {
        self.work.iter().sum()
    }
}

/// One open scope on this thread's stack.
struct Frame {
    metered: bool,
    /// Thread allocation counters at entry.
    allocs0: u64,
    bytes0: u64,
    frees0: u64,
    /// Inclusive heap traffic of already-closed children (subtracted to
    /// make the recorded columns exclusive).
    child_allocs: u64,
    child_bytes: u64,
    child_frees: u64,
    /// Elapsed nanoseconds of already-closed children.
    child_ns: u64,
    /// Work units charged while this frame was innermost.
    work: [u64; WorkKind::COUNT],
}

thread_local! {
    /// Per-thread stack of open cost frames.
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Pushes a fresh frame, snapshotting the thread's allocation counters.
pub(crate) fn enter_frame(metered: bool) {
    // The push itself (and any Vec growth) must not count against the
    // enclosing scope.
    let _p = pause_metering();
    let (a, b, f) = thread_alloc_counts();
    FRAMES.with(|fr| {
        fr.borrow_mut().push(Frame {
            metered,
            allocs0: a,
            bytes0: b,
            frees0: f,
            child_allocs: 0,
            child_bytes: 0,
            child_frees: 0,
            child_ns: 0,
            work: [0; WorkKind::COUNT],
        });
    });
}

/// Pops the innermost frame and returns its recorded [`CostStats`]
/// delta, crediting its inclusive heap traffic and elapsed time to the
/// parent frame. Returns zeros when no frame is open.
pub(crate) fn exit_frame(elapsed_ns: u64) -> CostStats {
    let _p = pause_metering();
    let (a, b, f) = thread_alloc_counts();
    FRAMES.with(|fr| {
        let mut frames = fr.borrow_mut();
        let Some(frame) = frames.pop() else {
            return CostStats::default();
        };
        let incl_allocs = a.saturating_sub(frame.allocs0);
        let incl_bytes = b.saturating_sub(frame.bytes0);
        let incl_frees = f.saturating_sub(frame.frees0);
        if let Some(parent) = frames.last_mut() {
            parent.child_allocs = parent.child_allocs.saturating_add(incl_allocs);
            parent.child_bytes = parent.child_bytes.saturating_add(incl_bytes);
            parent.child_frees = parent.child_frees.saturating_add(incl_frees);
            parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
        }
        let mut stats = CostStats {
            work: frame.work,
            total_ns: elapsed_ns,
            self_ns: elapsed_ns.saturating_sub(frame.child_ns),
            ..CostStats::default()
        };
        if frame.metered {
            stats.enters = 1;
            stats.allocs = incl_allocs.saturating_sub(frame.child_allocs);
            stats.bytes = incl_bytes.saturating_sub(frame.child_bytes);
            stats.frees = incl_frees.saturating_sub(frame.child_frees);
        }
        stats
    })
}

/// Charges `n` work units of `kind` to the innermost open scope on this
/// thread. Silently a no-op when no scope is open, so library code can
/// charge unconditionally.
pub fn charge(kind: WorkKind, n: u64) {
    let _ = FRAMES.try_with(|fr| {
        if let Some(frame) = fr.borrow_mut().last_mut() {
            frame.work[kind as usize] = frame.work[kind as usize].saturating_add(n);
        }
    });
}

/// RAII cost scope opened by [`Registry::cost_scope`](crate::Registry::cost_scope)
/// or [`Registry::work_scope`](crate::Registry::work_scope); records the
/// phase's cost delta under its path when dropped.
#[must_use = "a cost scope meters the region it is bound to; binding it to _ drops it immediately"]
pub struct CostScope<'a> {
    registry: &'a Registry,
    path: &'static str,
    start: Instant,
}

impl<'a> CostScope<'a> {
    pub(crate) fn new(registry: &'a Registry, path: &'static str, metered: bool) -> Self {
        enter_frame(metered);
        CostScope {
            registry,
            path,
            start: Instant::now(),
        }
    }
}

impl Drop for CostScope<'_> {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.cost_exit(self.path, elapsed);
    }
}

/// Interns a phase path restored from a snapshot, so deserialized cost
/// rows share the `&'static str` keying of live call sites. The leak is
/// bounded by the number of distinct phase paths (a few dozen).
pub(crate) fn intern_path(path: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut set = set.lock().expect("path intern poisoned");
    if let Some(existing) = set.get(path) {
        return existing;
    }
    let leaked: &'static str = Box::leak(path.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---- rendering ----

/// A node of the phase tree assembled from `/`-separated paths.
struct Node {
    stats: CostStats,
    recorded: bool,
    children: std::collections::BTreeMap<String, Node>,
}

impl Node {
    fn new() -> Self {
        Node {
            stats: CostStats::default(),
            recorded: false,
            children: std::collections::BTreeMap::new(),
        }
    }

    /// Stats to display: own recording, or the subtree sum for implicit
    /// parents that were never directly recorded.
    fn display(&self) -> CostStats {
        if self.recorded {
            return self.stats;
        }
        let mut sum = CostStats::default();
        for child in self.children.values() {
            sum.merge(&child.display());
        }
        sum
    }
}

fn build_tree(costs: &[(&'static str, CostStats)]) -> Node {
    let mut root = Node::new();
    for (path, stats) in costs {
        let mut node = &mut root;
        for part in path.split('/') {
            node = node
                .children
                .entry(part.to_owned())
                .or_insert_with(Node::new);
        }
        node.stats = *stats;
        node.recorded = true;
    }
    root
}

/// Renders the hierarchical phase tree as an aligned text table:
/// deterministic columns (enters, allocs, bytes, frees, work units)
/// followed by wall-clock self/total milliseconds. Implicit parent rows
/// show their subtree's sums.
pub fn render_tree(registry: &Registry) -> String {
    let costs = registry.costs();
    if costs.is_empty() {
        return "no cost scopes recorded\n".to_owned();
    }
    let mut rows: Vec<(String, CostStats)> = Vec::new();
    fn walk(node: &Node, name: &str, depth: usize, rows: &mut Vec<(String, CostStats)>) {
        if !name.is_empty() {
            rows.push((
                format!("{}{}", "  ".repeat(depth - 1), name),
                node.display(),
            ));
        }
        for (child_name, child) in &node.children {
            walk(child, child_name, depth + 1, rows);
        }
    }
    let root = build_tree(&costs);
    walk(&root, "", 0, &mut rows);

    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(5).max(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>8}  {:>12}  {:>14}  {:>12}  {:>10}  {:>10}  work\n",
        "phase", "enters", "allocs", "bytes", "frees", "self_ms", "total_ms",
    ));
    for (name, s) in &rows {
        let work: Vec<String> = WorkKind::ALL
            .iter()
            .filter(|k| s.work[**k as usize] > 0)
            .map(|k| format!("{}={}", k.name(), s.work[*k as usize]))
            .collect();
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>14}  {:>12}  {:>10.2}  {:>10.2}  {}\n",
            name,
            s.enters,
            s.allocs,
            s.bytes,
            s.frees,
            s.self_ns as f64 / 1e6,
            s.total_ns as f64 / 1e6,
            work.join(" "),
        ));
    }
    out
}

/// Collapsed-stack ("folded") flamegraph lines weighted by wall-clock
/// self time in microseconds — one `a;b;c weight` line per phase, ready
/// for `flamegraph.pl` / speedscope. Wall-clock: not comparable across
/// runs.
pub fn folded_wall(registry: &Registry) -> String {
    folded_by(registry, |s| s.self_ns / 1_000)
}

/// Collapsed-stack flamegraph lines weighted by deterministic cost —
/// exclusive allocations plus work units — so two runs of the same
/// program produce byte-identical output at any thread count.
pub fn folded_cost(registry: &Registry) -> String {
    folded_by(registry, |s| s.allocs.saturating_add(s.work_total()))
}

fn folded_by(registry: &Registry, weight: impl Fn(&CostStats) -> u64) -> String {
    let mut out = String::new();
    for (path, stats) in registry.costs() {
        let w = weight(&stats);
        if w > 0 {
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
    }
    out
}

//! Trace plane: a deterministic flight recorder plus a Chrome-trace-event
//! exporter.
//!
//! The [`FlightRecorder`] captures typed [`TraceEvent`]s — day, stage,
//! entity id, free-form detail — into a bounded ring buffer guarded by a
//! [`TraceLevel`] knob. Like [`Registry`](crate::Registry), recorders are
//! created per work item (a crawl vertical, a scan shard) and folded back
//! into a parent recorder in item order; [`FlightRecorder::merge_from`]
//! **re-stamps** absorbed events with the destination's monotonic
//! sequence counter, so the merged sequence depends only on the merge
//! order, never on thread scheduling. That makes the recorder part of the
//! deterministic half of the telemetry contract: its rendered contents
//! are bit-identical at any `--threads` setting.
//!
//! [`ChromeTrace`] is the wall-clock half: it renders span timings and
//! per-day stage timelines as Chrome trace-event JSON (loadable at
//! `ui.perfetto.dev`), and — exactly like span exports — never
//! participates in determinism checks.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use serde::Value;
use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};

/// How much the flight recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Nothing is recorded; every trace call is a cheap branch.
    #[default]
    Off,
    /// Per-stage summary events only.
    Stage,
    /// Stage summaries plus per-entity events (the `trace!` macro).
    Event,
}

impl TraceLevel {
    /// Parses a CLI-style level name (`off` / `stage` / `event`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "stage" => Some(Self::Stage),
            "event" => Some(Self::Event),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Stage => "stage",
            Self::Event => "event",
        }
    }
}

/// One recorded trace event. The sequence number is assigned by the
/// recorder that currently owns the event — merging re-stamps it — so
/// equal recorders render byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic position in the owning recorder's stream.
    pub seq: u64,
    /// Simulation day index the event belongs to.
    pub day: u32,
    /// The stage that produced the event (a static span-style name).
    pub stage: &'static str,
    /// Entity the event is about (domain id, campaign index, row, ...).
    pub entity: u64,
    /// Human-readable detail line.
    pub detail: String,
}

#[derive(Debug, Default)]
struct RecorderInner {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<TraceEvent>,
}

/// A bounded, thread-safe ring buffer of [`TraceEvent`]s.
///
/// Recording assigns each event the next sequence number; once the buffer
/// holds `cap` events the oldest is evicted (counted in
/// [`dropped`](Self::dropped)) so the newest events always survive.
/// Worker recorders should be [`unbounded`](Self::unbounded) and merged
/// into one bounded parent in work-item order — eviction then happens
/// only at the merge point, in a single deterministic stream.
#[derive(Debug)]
pub struct FlightRecorder {
    level: TraceLevel,
    cap: usize,
    inner: Mutex<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` events at `level`.
    pub fn new(level: TraceLevel, cap: usize) -> Self {
        Self {
            level,
            cap: cap.max(1),
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    /// A recorder that never evicts — the right shape for per-work-item
    /// recorders whose contents are merged (and bounded) by the parent.
    pub fn unbounded(level: TraceLevel) -> Self {
        Self::new(level, usize::MAX)
    }

    /// The no-op recorder: level [`TraceLevel::Off`], records nothing.
    pub fn disabled() -> Self {
        Self::new(TraceLevel::Off, 1)
    }

    /// The configured capture level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// `true` unless the level is [`TraceLevel::Off`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// `true` only at [`TraceLevel::Event`] — the gate the [`trace!`]
    /// macro checks before paying for `format!`.
    ///
    /// [`trace!`]: crate::trace!
    #[inline]
    pub fn detailed(&self) -> bool {
        self.level == TraceLevel::Event
    }

    /// Records one event (no-op when the recorder is off).
    pub fn record(&self, day: u32, stage: &'static str, entity: u64, detail: String) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back(TraceEvent {
            seq,
            day,
            stage,
            entity,
            detail,
        });
        if inner.events.len() > self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
    }

    /// Absorbs `other`'s events in their recorded order, **re-stamping**
    /// each with this recorder's sequence counter. Folding per-item
    /// recorders in item order therefore reproduces the single-threaded
    /// stream bit-for-bit — the same contract as
    /// [`Registry::merge_from`](crate::Registry::merge_from).
    pub fn merge_from(&self, other: &FlightRecorder) {
        if !self.enabled() {
            return;
        }
        let theirs = other.inner.lock().expect("recorder lock");
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.dropped += theirs.dropped;
        for ev in &theirs.events {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            inner.events.push_back(TraceEvent { seq, ..ev.clone() });
            if inner.events.len() > self.cap {
                inner.events.pop_front();
                inner.dropped += 1;
            }
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").events.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far (oldest-first casualties).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder lock").dropped
    }

    /// A snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("recorder lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Deterministic text rendering — the string thread-matrix tests
    /// compare, one line per retained event plus a header.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("recorder lock");
        let mut out = format!(
            "flight-recorder level={} events={} dropped={}\n",
            self.level.as_str(),
            inner.events.len(),
            inner.dropped
        );
        for ev in &inner.events {
            out.push_str(&format!(
                "seq={:08} day={:04} stage={} entity={} {}\n",
                ev.seq, ev.day, ev.stage, ev.entity, ev.detail
            ));
        }
        out
    }

    /// JSON value of the retained events (deterministic half).
    pub fn to_value(&self) -> Value {
        let inner = self.inner.lock().expect("recorder lock");
        let events = inner
            .events
            .iter()
            .map(|ev| {
                Value::Map(vec![
                    ("seq".into(), Value::UInt(ev.seq)),
                    ("day".into(), Value::UInt(u64::from(ev.day))),
                    ("stage".into(), Value::Str(ev.stage.to_owned())),
                    ("entity".into(), Value::UInt(ev.entity)),
                    ("detail".into(), Value::Str(ev.detail.clone())),
                ])
            })
            .collect();
        Value::Map(vec![
            ("level".into(), Value::Str(self.level.as_str().to_owned())),
            ("dropped".into(), Value::UInt(inner.dropped)),
            ("events".into(), Value::Seq(events)),
        ])
    }
}

/// Interns a stage name back to a `&'static str` when restoring trace
/// events from a snapshot. Stage names come from a tiny fixed vocabulary
/// (span-style literals), so the leak is bounded by that vocabulary, not
/// by the number of events or restores.
fn static_stage(name: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(Vec::new()));
    let mut table = table.lock().expect("stage intern lock");
    if let Some(found) = table.iter().find(|s| **s == name) {
        return found;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

impl Snapshot for FlightRecorder {
    const TAG: &'static str = "flight-recorder";
    const VERSION: u16 = 1;

    fn write_body(&self, w: &mut Writer) {
        let inner = self.inner.lock().expect("recorder lock");
        w.put_u8(match self.level {
            TraceLevel::Off => 0,
            TraceLevel::Stage => 1,
            TraceLevel::Event => 2,
        });
        w.put_u64(self.cap as u64);
        w.put_u64(inner.next_seq);
        w.put_u64(inner.dropped);
        w.put_len(inner.events.len());
        for ev in &inner.events {
            w.put_u64(ev.seq);
            w.put_u32(ev.day);
            w.put_str(ev.stage);
            w.put_u64(ev.entity);
            w.put_str(&ev.detail);
        }
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let level = match r.get_u8()? {
            0 => TraceLevel::Off,
            1 => TraceLevel::Stage,
            2 => TraceLevel::Event,
            b => return Err(SnapshotError::Corrupt(format!("trace level byte {b}"))),
        };
        let cap = r.get_u64()? as usize;
        let next_seq = r.get_u64()?;
        let dropped = r.get_u64()?;
        let n = r.get_len()?;
        let mut events = VecDeque::with_capacity(n);
        for _ in 0..n {
            let seq = r.get_u64()?;
            let day = r.get_u32()?;
            let stage = static_stage(&r.get_str()?);
            let entity = r.get_u64()?;
            let detail = r.get_str()?;
            events.push_back(TraceEvent {
                seq,
                day,
                stage,
                entity,
                detail,
            });
        }
        Ok(FlightRecorder {
            level,
            cap: cap.max(1),
            inner: Mutex::new(RecorderInner {
                next_seq,
                dropped,
                events,
            }),
        })
    }
}

/// Builder for Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load). Wall-clock only: this export carries span
/// durations and per-day stage timelines and is **excluded** from every
/// determinism check, exactly like span exports today.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Value>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trace events buffered so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn meta(&mut self, name: &str, pid: u64, tid: u64, value: &str) {
        self.events.push(Value::Map(vec![
            ("name".into(), Value::Str(name.to_owned())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::UInt(pid)),
            ("tid".into(), Value::UInt(tid)),
            (
                "args".into(),
                Value::Map(vec![("name".into(), Value::Str(value.to_owned()))]),
            ),
        ]));
    }

    /// Names a process lane (`ph: "M"` metadata event).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        self.meta("process_name", pid, 0, name);
    }

    /// Names a thread lane within a process.
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.meta("thread_name", pid, tid, name);
    }

    /// Adds one complete (`ph: "X"`) slice: `ts`/`dur` in microseconds.
    // The argument list mirrors the trace-event field set one-to-one; a
    // params struct would just rename the same seven fields.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(String, Value)>,
    ) {
        self.events.push(Value::Map(vec![
            ("name".into(), Value::Str(name.to_owned())),
            ("cat".into(), Value::Str(cat.to_owned())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::UInt(ts_us)),
            ("dur".into(), Value::UInt(dur_us)),
            ("pid".into(), Value::UInt(pid)),
            ("tid".into(), Value::UInt(tid)),
            ("args".into(), Value::Map(args)),
        ]));
    }

    /// Adds one counter (`ph: "C"`) sample.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: u64, values: Vec<(String, f64)>) {
        let args = values
            .into_iter()
            .map(|(k, v)| (k, Value::Float(v)))
            .collect();
        self.events.push(Value::Map(vec![
            ("name".into(), Value::Str(name.to_owned())),
            ("ph".into(), Value::Str("C".into())),
            ("ts".into(), Value::UInt(ts_us)),
            ("pid".into(), Value::UInt(pid)),
            ("args".into(), Value::Map(args)),
        ]));
    }

    /// The full document as a JSON value (`{"traceEvents": [...]}`).
    pub fn to_value(&self) -> Value {
        Value::Map(vec![(
            "traceEvents".into(),
            Value::Seq(self.events.clone()),
        )])
    }

    /// Serializes the trace as Chrome trace-event JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("trace value renders")
    }

    /// Best-effort write: creates parent directories, never fails the
    /// run (a missing report is an inconvenience, not an error).
    pub fn write(&self, path: &str) {
        let p = std::path::Path::new(path);
        if let Some(dir) = p.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        if let Err(e) = std::fs::write(p, self.to_json() + "\n") {
            eprintln!("warning: could not write trace {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::proptest;

    #[test]
    fn off_recorder_records_nothing() {
        let rec = FlightRecorder::disabled();
        rec.record(1, "stage.crawl", 7, "ignored".into());
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        assert!(!rec.enabled());
        assert!(!rec.detailed());
    }

    #[test]
    fn eviction_keeps_newest_events_with_sequence_intact() {
        let rec = FlightRecorder::new(TraceLevel::Event, 4);
        for i in 0..10u64 {
            rec.record(1, "s", i, format!("e{i}"));
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(rec.dropped(), 6);
        // The newest four survive, sequence numbers untouched by eviction.
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(evs.last().unwrap().detail, "e9");
    }

    #[test]
    fn merge_restamps_in_destination_order() {
        let a = FlightRecorder::unbounded(TraceLevel::Event);
        let b = FlightRecorder::unbounded(TraceLevel::Event);
        a.record(1, "s", 0, "a0".into());
        b.record(1, "s", 0, "b0".into());
        b.record(1, "s", 1, "b1".into());
        let parent = FlightRecorder::new(TraceLevel::Event, 64);
        parent.merge_from(&a);
        parent.merge_from(&b);
        let evs = parent.events();
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(
            evs.iter().map(|e| e.detail.as_str()).collect::<Vec<_>>(),
            vec!["a0", "b0", "b1"]
        );
    }

    #[test]
    fn recorder_snapshot_roundtrip_renders_identically() {
        let rec = FlightRecorder::new(TraceLevel::Event, 4);
        for i in 0..9u64 {
            rec.record(3, "stage.crawl", i, format!("e{i}"));
        }
        let back = FlightRecorder::decode(&rec.encode()).unwrap();
        assert_eq!(back.render(), rec.render());
        assert_eq!(back.dropped(), rec.dropped());
        // Recording continues with the preserved sequence counter.
        back.record(4, "stage.crawl", 99, "next".into());
        rec.record(4, "stage.crawl", 99, "next".into());
        assert_eq!(back.render(), rec.render());
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "study");
        t.name_thread(1, 1, "stages");
        t.complete(
            "stage.crawl",
            "stage",
            1,
            1,
            100,
            250,
            vec![("day".into(), Value::UInt(3))],
        );
        t.counter("psrs", 1, 350, vec![("total".into(), 42.0)]);
        let json = t.to_json();
        assert!(json.trim_start().starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"dur\": 250"));
        assert_eq!(t.len(), 4);
    }

    /// Replays `ops` through `shards` unbounded work-item recorders
    /// merged in item order into a bounded parent; must equal direct
    /// bounded recording of the same stream.
    fn recorder_by_split(ops: &[(u8, u32)], shards: usize, cap: usize) -> (String, String) {
        let direct = FlightRecorder::new(TraceLevel::Event, cap);
        let parts: Vec<FlightRecorder> = (0..shards)
            .map(|_| FlightRecorder::unbounded(TraceLevel::Event))
            .collect();
        // Contiguous split, like day-shards over the PSR store: item i
        // owns an equal contiguous slice of the op stream.
        let chunk = ops.len().div_ceil(shards.max(1)).max(1);
        for (i, (entity, day)) in ops.iter().enumerate() {
            let detail = format!("op{i}");
            direct.record(*day, "s", u64::from(*entity), detail.clone());
            parts[(i / chunk).min(shards - 1)].record(*day, "s", u64::from(*entity), detail);
        }
        let merged = FlightRecorder::new(TraceLevel::Event, cap);
        for p in &parts {
            merged.merge_from(p);
        }
        (direct.render(), merged.render())
    }

    proptest! {
        /// Shard-order merge is bit-identical at 1, 2, and 8 "threads":
        /// re-stamping makes the merged stream depend only on shard
        /// order, so any worker count reproduces direct recording.
        #[test]
        fn merge_is_bit_identical_across_shard_counts(
            ops in proptest::collection::vec((0u8..16, 0u32..400), 1..96)
        ) {
            for shards in [1usize, 2, 8] {
                let (direct, merged) = recorder_by_split(&ops, shards, 1 << 10);
                assert_eq!(direct, merged, "diverged at {shards} shards");
            }
        }

        /// Eviction under any pressure keeps exactly the newest `cap`
        /// events, their sequence numbers contiguous and intact.
        #[test]
        fn eviction_is_newest_wins_with_intact_sequences(
            n in 1usize..200, cap in 1usize..32
        ) {
            let rec = FlightRecorder::new(TraceLevel::Event, cap);
            for i in 0..n {
                rec.record(0, "s", i as u64, String::new());
            }
            let evs = rec.events();
            let kept = n.min(cap);
            assert_eq!(evs.len(), kept);
            assert_eq!(rec.dropped() as usize, n - kept);
            let first = (n - kept) as u64;
            for (i, ev) in evs.iter().enumerate() {
                assert_eq!(ev.seq, first + i as u64);
            }
        }
    }
}

//! The metric registry: named counters, histograms, and span aggregates.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use serde::Value;
use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};

use crate::histogram::Histogram;
use crate::span::{self, SpanStats, SpanTimer};

/// A metric identity: a name plus an ordered set of label pairs.
///
/// Rendered as `name` or `name{k=v,k2=v2}` with labels sorted by key, so
/// the same logical metric always maps to the same key no matter how the
/// labels were listed at the call site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key; labels are sorted by label name.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_owned(),
            labels,
        }
    }

    /// The metric name without labels.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A thread-safe registry of counters, histograms, and span timings.
///
/// All mutation goes through `&self`, so a registry can be shared freely
/// across stages and threads. Counters and histograms are pure integer
/// aggregates: [`Registry::merge_from`] is associative and commutative,
/// and the deterministic export ([`Registry::metrics_json`]) contains
/// only them — span timings are wall-clock and live in a separate
/// section so run-to-run comparisons stay bit-stable.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<MetricKey, u64>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- counters ----

    /// Adds `n` to the unlabeled counter `name`.
    pub fn count(&self, name: &str, n: u64) {
        self.count_with(name, &[], n);
    }

    /// Adds `n` to the counter `name` with the given labels.
    pub fn count_with(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        let mut counters = self.counters.lock().expect("obs counters poisoned");
        *counters.entry(MetricKey::new(name, labels)).or_insert(0) += n;
    }

    /// Current value of a counter by rendered key (`name` or
    /// `name{k=v}`), 0 when absent. Label-blind totals are available via
    /// [`Registry::counter_total`].
    pub fn counter(&self, rendered: &str) -> u64 {
        let counters = self.counters.lock().expect("obs counters poisoned");
        counters
            .iter()
            .find(|(k, _)| k.to_string() == rendered)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of every counter sharing `name`, across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        let counters = self.counters.lock().expect("obs counters poisoned");
        counters
            .iter()
            .filter(|(k, _)| k.name() == name)
            .map(|(_, v)| *v)
            .sum()
    }

    // ---- histograms ----

    /// Records an observation into the unlabeled histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, &[], value);
    }

    /// Records an observation into the histogram `name` with labels.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut hists = self.histograms.lock().expect("obs histograms poisoned");
        hists
            .entry(MetricKey::new(name, labels))
            .or_default()
            .observe(value);
    }

    /// Snapshot of a histogram by rendered key.
    pub fn histogram(&self, rendered: &str) -> Option<Histogram> {
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        hists
            .iter()
            .find(|(k, _)| k.to_string() == rendered)
            .map(|(_, h)| h.clone())
    }

    // ---- spans ----

    /// Opens a wall-clock span; it records itself under `name` when the
    /// returned guard drops. Spans opened while another span is live on
    /// the same thread count as its children for self-time accounting.
    pub fn span(&self, name: &str) -> SpanTimer<'_> {
        SpanTimer::new(self, name)
    }

    /// Manually opens a span frame (the testable half of [`Registry::span`]).
    /// Every `span_enter` must be paired with exactly one [`Registry::span_exit`]
    /// on the same thread, in LIFO order.
    pub fn span_enter(&self) {
        span::enter_frame();
    }

    /// Manually closes the innermost span frame as `name` with a caller-
    /// supplied duration. Records count/total/max and exclusive self time
    /// (children's elapsed subtracted), and credits `elapsed_ns` to the
    /// parent frame.
    pub fn span_exit(&self, name: &str, elapsed_ns: u64) {
        let child_ns = span::exit_frame(elapsed_ns);
        let mut spans = self.spans.lock().expect("obs spans poisoned");
        let stats = spans.entry(name.to_owned()).or_default();
        stats.count += 1;
        stats.total_ns = stats.total_ns.saturating_add(elapsed_ns);
        stats.self_ns = stats
            .self_ns
            .saturating_add(elapsed_ns.saturating_sub(child_ns));
        stats.max_ns = stats.max_ns.max(elapsed_ns);
    }

    /// Aggregate for one span name.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        let spans = self.spans.lock().expect("obs spans poisoned");
        spans.get(name).copied()
    }

    /// All span aggregates, sorted by name.
    pub fn spans(&self) -> Vec<(String, SpanStats)> {
        let spans = self.spans.lock().expect("obs spans poisoned");
        spans.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    // ---- merge ----

    /// Folds another registry's contents into this one. Counter and
    /// histogram merging is integer addition, so any merge order or
    /// grouping produces the identical registry; span aggregates merge
    /// the same way on their nanosecond totals.
    pub fn merge_from(&self, other: &Registry) {
        {
            let theirs = other.counters.lock().expect("obs counters poisoned");
            let mut ours = self.counters.lock().expect("obs counters poisoned");
            for (k, v) in theirs.iter() {
                *ours.entry(k.clone()).or_insert(0) += v;
            }
        }
        {
            let theirs = other.histograms.lock().expect("obs histograms poisoned");
            let mut ours = self.histograms.lock().expect("obs histograms poisoned");
            for (k, h) in theirs.iter() {
                ours.entry(k.clone()).or_default().merge(h);
            }
        }
        {
            let theirs = other.spans.lock().expect("obs spans poisoned");
            let mut ours = self.spans.lock().expect("obs spans poisoned");
            for (k, s) in theirs.iter() {
                ours.entry(k.clone()).or_default().merge(s);
            }
        }
    }

    /// Rendered keys of every counter and histogram, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let counters = self.counters.lock().expect("obs counters poisoned");
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        let mut names: Vec<String> = counters
            .keys()
            .map(MetricKey::to_string)
            .chain(hists.keys().map(MetricKey::to_string))
            .collect();
        names.sort();
        names
    }

    // ---- export ----

    /// The deterministic half of the registry — counters and histograms,
    /// sorted by rendered key — as a JSON value tree. Two runs of the
    /// same deterministic program produce byte-identical output here, at
    /// any thread count; wall-clock spans are deliberately excluded.
    pub fn metrics_value(&self) -> Value {
        let counters = self.counters.lock().expect("obs counters poisoned");
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        let counter_map: Vec<(String, Value)> = counters
            .iter()
            .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
            .collect();
        let hist_map: Vec<(String, Value)> = hists
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(bound, n)| Value::Seq(vec![Value::UInt(bound), Value::UInt(n)]))
                    .collect();
                (
                    k.to_string(),
                    Value::Map(vec![
                        ("count".into(), Value::UInt(h.count())),
                        (
                            "sum".into(),
                            Value::UInt(u64::try_from(h.sum()).unwrap_or(u64::MAX)),
                        ),
                        ("min".into(), opt_uint(h.min())),
                        ("max".into(), opt_uint(h.max())),
                        ("p50".into(), opt_uint(h.p50())),
                        ("p95".into(), opt_uint(h.p95())),
                        ("buckets".into(), Value::Seq(buckets)),
                    ]),
                )
            })
            .collect();
        Value::Map(vec![
            ("counters".into(), Value::Map(counter_map)),
            ("histograms".into(), Value::Map(hist_map)),
        ])
    }

    /// Span timings as a JSON value tree (milliseconds, wall-clock — not
    /// comparable across runs; see [`Registry::metrics_value`]).
    pub fn spans_value(&self) -> Value {
        let spans = self.spans.lock().expect("obs spans poisoned");
        let map = spans
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Value::Map(vec![
                        ("count".into(), Value::UInt(s.count)),
                        ("total_ms".into(), Value::Float(ns_to_ms(s.total_ns))),
                        ("self_ms".into(), Value::Float(ns_to_ms(s.self_ns))),
                        ("max_ms".into(), Value::Float(ns_to_ms(s.max_ns))),
                        (
                            "mean_ms".into(),
                            Value::Float(if s.count == 0 {
                                0.0
                            } else {
                                ns_to_ms(s.total_ns) / s.count as f64
                            }),
                        ),
                    ]),
                )
            })
            .collect();
        Value::Map(map)
    }

    /// Deterministic metrics (counters + histograms) as pretty JSON.
    /// Bit-identical across runs and thread counts of a deterministic
    /// program — the string the thread-matrix tests compare.
    pub fn metrics_json(&self) -> String {
        serde_json::to_string_pretty(&self.metrics_value()).expect("value tree renders")
    }

    /// Full registry — metrics plus wall-clock spans — as pretty JSON.
    pub fn to_json(&self) -> String {
        let Value::Map(mut root) = self.metrics_value() else {
            unreachable!("metrics are a map")
        };
        root.push(("spans".into(), self.spans_value()));
        serde_json::to_string_pretty(&Value::Map(root)).expect("value tree renders")
    }
}

fn write_key(w: &mut Writer, k: &MetricKey) {
    w.put_str(&k.name);
    w.put_seq(&k.labels, |w, (lk, lv)| {
        w.put_str(lk);
        w.put_str(lv);
    });
}

fn read_key(r: &mut Reader<'_>) -> Result<MetricKey, SnapshotError> {
    let name = r.get_str()?;
    let labels = r.get_seq(|r| Ok((r.get_str()?, r.get_str()?)))?;
    Ok(MetricKey { name, labels })
}

impl Snapshot for Registry {
    const TAG: &'static str = "obs-registry";
    const VERSION: u16 = 1;

    /// Serializes the deterministic half of the registry: counters and
    /// histograms, in their `BTreeMap` key order. Span aggregates are
    /// wall-clock measurements of *this* process and are deliberately not
    /// captured — a restored registry starts with empty spans, exactly as
    /// the manifest's deterministic projection expects.
    fn write_body(&self, w: &mut Writer) {
        let counters = self.counters.lock().expect("obs counters poisoned");
        w.put_len(counters.len());
        for (k, v) in counters.iter() {
            write_key(w, k);
            w.put_u64(*v);
        }
        drop(counters);
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        w.put_len(hists.len());
        for (k, h) in hists.iter() {
            write_key(w, k);
            w.put_nested(h);
        }
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let reg = Registry::new();
        {
            let mut counters = reg.counters.lock().expect("obs counters poisoned");
            for _ in 0..r.get_len()? {
                let k = read_key(r)?;
                let v = r.get_u64()?;
                counters.insert(k, v);
            }
        }
        {
            let mut hists = reg.histograms.lock().expect("obs histograms poisoned");
            for _ in 0..r.get_len()? {
                let k = read_key(r)?;
                let h: Histogram = r.get_nested()?;
                hists.insert(k, h);
            }
        }
        Ok(reg)
    }
}

fn opt_uint(v: Option<u64>) -> Value {
    match v {
        Some(v) => Value::UInt(v),
        None => Value::Null,
    }
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

//! The metric registry: named counters, histograms, span aggregates,
//! and per-phase cost rows.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Mutex;

use serde::Value;
use ss_types::snapshot::{Reader, Snapshot, SnapshotError, Writer};

use crate::cost::{self, CostScope, CostStats, WorkKind};
use crate::histogram::Histogram;
use crate::span::{self, SpanStats, SpanTimer};

/// A metric identity: a name plus an ordered set of label pairs.
///
/// Rendered as `name` or `name{k=v,k2=v2}` with labels sorted by key, so
/// the same logical metric always maps to the same key no matter how the
/// labels were listed at the call site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key; labels are sorted by label name.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_owned(),
            labels,
        }
    }

    /// The metric name without labels.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

// ---- interned key lookup ----

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Widest label set served by the allocation-free fast path; wider sets
/// (which don't occur in practice) fall back to building a [`MetricKey`].
const MAX_INLINE_LABELS: usize = 16;

/// Stable insertion sort of label indices by `(key, value)` pair —
/// the same order `MetricKey::new` produces, computed without allocating.
fn sorted_order(labels: &[(&str, &str)]) -> [usize; MAX_INLINE_LABELS] {
    let mut order = [0usize; MAX_INLINE_LABELS];
    let n = labels.len().min(MAX_INLINE_LABELS);
    for (i, slot) in order.iter_mut().enumerate().take(n) {
        *slot = i;
    }
    for i in 1..n {
        let mut j = i;
        while j > 0 && labels[order[j - 1]] > labels[order[j]] {
            order.swap(j - 1, j);
            j -= 1;
        }
    }
    order
}

/// FNV-1a over the canonical (sorted-label) rendering of a key, fed
/// field-by-field so no intermediate string is built.
fn hash_parts<'a>(name: &str, sorted_labels: impl Iterator<Item = (&'a str, &'a str)>) -> u64 {
    let mut h = fnv_extend(FNV_OFFSET, name.as_bytes());
    h = fnv_extend(h, &[0xFE]);
    for (k, v) in sorted_labels {
        h = fnv_extend(h, k.as_bytes());
        h = fnv_extend(h, &[0xFF]);
        h = fnv_extend(h, v.as_bytes());
        h = fnv_extend(h, &[0xFF]);
    }
    h
}

fn hash_call_site(name: &str, labels: &[(&str, &str)], order: &[usize]) -> u64 {
    hash_parts(name, order.iter().map(|&i| labels[i]))
}

fn hash_key(key: &MetricKey) -> u64 {
    hash_parts(
        &key.name,
        key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())),
    )
}

/// True when `key` identifies the same metric as the call-site
/// `(name, labels)` — the full equality check behind the hash lookup,
/// so hash collisions are served correctly.
fn key_matches(key: &MetricKey, name: &str, labels: &[(&str, &str)], order: &[usize]) -> bool {
    key.name == name
        && key.labels.len() == labels.len()
        && key
            .labels
            .iter()
            .zip(order.iter())
            .all(|((kk, kv), &i)| kk == labels[i].0 && kv == labels[i].1)
}

/// Interned metric storage: values live in a slot vector, a sorted index
/// keeps deterministic export order, and a hash table of candidate slots
/// serves repeat lookups without building a [`MetricKey`] — the hot path
/// (an existing metric) allocates nothing.
#[derive(Debug, Default)]
struct Bank<V> {
    /// Deterministic iteration order: key → slot.
    index: BTreeMap<MetricKey, usize>,
    /// Slot → key, for the fast path's equality check.
    keys: Vec<MetricKey>,
    vals: Vec<V>,
    /// Canonical key hash → candidate slots (collisions share a list).
    hot: HashMap<u64, Vec<usize>>,
}

impl<V: Default> Bank<V> {
    /// The value slot for `(name, labels)`, creating it on first sight.
    fn slot(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut V {
        if labels.len() > MAX_INLINE_LABELS {
            let key = MetricKey::new(name, labels);
            let h = hash_key(&key);
            return self.slot_for_hashed(key, h);
        }
        let order = sorted_order(labels);
        let order = &order[..labels.len()];
        let h = hash_call_site(name, labels, order);
        let mut found = None;
        if let Some(cands) = self.hot.get(&h) {
            for &i in cands {
                if key_matches(&self.keys[i], name, labels, order) {
                    found = Some(i);
                    break;
                }
            }
        }
        match found {
            Some(i) => &mut self.vals[i],
            None => self.slot_for_hashed(MetricKey::new(name, labels), h),
        }
    }

    /// The value slot for an already-built key (merge / snapshot restore).
    fn slot_for_key(&mut self, key: MetricKey) -> &mut V {
        let h = hash_key(&key);
        self.slot_for_hashed(key, h)
    }

    fn slot_for_hashed(&mut self, key: MetricKey, h: u64) -> &mut V {
        if let Some(&i) = self.index.get(&key) {
            return &mut self.vals[i];
        }
        let i = self.vals.len();
        self.vals.push(V::default());
        self.keys.push(key.clone());
        self.index.insert(key, i);
        self.hot.entry(h).or_default().push(i);
        &mut self.vals[i]
    }

    /// Entries in sorted key order.
    fn iter(&self) -> impl Iterator<Item = (&MetricKey, &V)> {
        self.index.iter().map(|(k, &i)| (k, &self.vals[i]))
    }

    fn len(&self) -> usize {
        self.vals.len()
    }
}

/// A thread-safe registry of counters, histograms, span timings, and
/// per-phase cost rows.
///
/// All mutation goes through `&self`, so a registry can be shared freely
/// across stages and threads. Counters, histograms, and the
/// deterministic cost columns are pure integer aggregates:
/// [`Registry::merge_from`] is associative and commutative, and the
/// deterministic exports ([`Registry::metrics_json`],
/// [`Registry::costs_json`]) contain only them — span timings and the
/// cost rows' wall-clock fields live in separate sections so run-to-run
/// comparisons stay bit-stable.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Bank<u64>>,
    histograms: Mutex<Bank<Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    costs: Mutex<BTreeMap<&'static str, CostStats>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- counters ----

    /// Adds `n` to the unlabeled counter `name`.
    pub fn count(&self, name: &str, n: u64) {
        self.count_with(name, &[], n);
    }

    /// Adds `n` to the counter `name` with the given labels.
    pub fn count_with(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        let mut counters = self.counters.lock().expect("obs counters poisoned");
        *counters.slot(name, labels) += n;
    }

    /// Current value of a counter by rendered key (`name` or
    /// `name{k=v}`), 0 when absent. Label-blind totals are available via
    /// [`Registry::counter_total`].
    pub fn counter(&self, rendered: &str) -> u64 {
        let counters = self.counters.lock().expect("obs counters poisoned");
        let found = counters
            .iter()
            .find(|(k, _)| k.to_string() == rendered)
            .map(|(_, v)| *v);
        found.unwrap_or(0)
    }

    /// Sum of every counter sharing `name`, across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        let counters = self.counters.lock().expect("obs counters poisoned");
        counters
            .iter()
            .filter(|(k, _)| k.name() == name)
            .map(|(_, v)| *v)
            .sum()
    }

    // ---- histograms ----

    /// Records an observation into the unlabeled histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, &[], value);
    }

    /// Records an observation into the histogram `name` with labels.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut hists = self.histograms.lock().expect("obs histograms poisoned");
        hists.slot(name, labels).observe(value);
    }

    /// Snapshot of a histogram by rendered key.
    pub fn histogram(&self, rendered: &str) -> Option<Histogram> {
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        let found = hists
            .iter()
            .find(|(k, _)| k.to_string() == rendered)
            .map(|(_, h)| h.clone());
        found
    }

    // ---- spans ----

    /// Opens a wall-clock span; it records itself under `name` when the
    /// returned guard drops. Spans opened while another span is live on
    /// the same thread count as its children for self-time accounting.
    pub fn span(&self, name: &str) -> SpanTimer<'_> {
        SpanTimer::new(self, name)
    }

    /// Manually opens a span frame (the testable half of [`Registry::span`]).
    /// Every `span_enter` must be paired with exactly one [`Registry::span_exit`]
    /// on the same thread, in LIFO order.
    pub fn span_enter(&self) {
        span::enter_frame();
    }

    /// Manually closes the innermost span frame as `name` with a caller-
    /// supplied duration. Records count/total/max and exclusive self time
    /// (children's elapsed subtracted), and credits `elapsed_ns` to the
    /// parent frame.
    pub fn span_exit(&self, name: &str, elapsed_ns: u64) {
        let child_ns = span::exit_frame(elapsed_ns);
        let mut spans = self.spans.lock().expect("obs spans poisoned");
        let stats = spans.entry(name.to_owned()).or_default();
        stats.count += 1;
        stats.total_ns = stats.total_ns.saturating_add(elapsed_ns);
        stats.self_ns = stats
            .self_ns
            .saturating_add(elapsed_ns.saturating_sub(child_ns));
        stats.max_ns = stats.max_ns.max(elapsed_ns);
    }

    /// Aggregate for one span name.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        let spans = self.spans.lock().expect("obs spans poisoned");
        spans.get(name).copied()
    }

    /// All span aggregates, sorted by name.
    pub fn spans(&self) -> Vec<(String, SpanStats)> {
        let spans = self.spans.lock().expect("obs spans poisoned");
        spans.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    // ---- costs ----

    /// Opens a fully-metered cost scope under the hierarchical `path`
    /// (`/`-separated, e.g. `"crawl/render"`): heap allocations, bytes,
    /// frees, work units, and wall time are attributed to the phase when
    /// the guard drops. Only for *stable parallel units* — code where
    /// the same work lands in the same scope regardless of thread count;
    /// driver-side phases use [`Registry::work_scope`] instead.
    pub fn cost_scope(&self, path: &'static str) -> CostScope<'_> {
        CostScope::new(self, path, true)
    }

    /// Opens a work-only cost scope: work units and wall time record,
    /// but the enter and allocation columns stay zero. For phases whose
    /// entry counts or heap pattern would be thread-schedule-dependent.
    pub fn work_scope(&self, path: &'static str) -> CostScope<'_> {
        CostScope::new(self, path, false)
    }

    /// Manually opens a cost frame (the testable half of
    /// [`Registry::cost_scope`] / [`Registry::work_scope`]). Pair with
    /// exactly one [`Registry::cost_exit`] on the same thread, LIFO.
    pub fn cost_enter(&self, metered: bool) {
        cost::enter_frame(metered);
    }

    /// Manually closes the innermost cost frame under `path` with a
    /// caller-supplied duration, recording its exclusive cost delta.
    pub fn cost_exit(&self, path: &'static str, elapsed_ns: u64) {
        let stats = cost::exit_frame(elapsed_ns);
        self.record_cost(path, stats);
    }

    /// Folds a pre-built cost delta into the row for `path` (integer
    /// addition). The merge primitive behind [`Registry::cost_exit`] and
    /// [`Registry::merge_from`], public so tests and drains can record
    /// synthetic rows directly.
    pub fn record_cost(&self, path: &'static str, stats: CostStats) {
        // Row bookkeeping must never count against an enclosing scope.
        let _p = crate::alloc::pause_metering();
        let mut costs = self.costs.lock().expect("obs costs poisoned");
        costs.entry(path).or_default().merge(&stats);
    }

    /// Adds `n` work units of `kind` directly onto the row for `path`,
    /// bypassing the thread-local scope stack. For drains that move
    /// internally-counted work (e.g. the engine's SERP walk counters)
    /// onto a fixed phase row at a deterministic choke point.
    pub fn add_work(&self, path: &'static str, kind: WorkKind, n: u64) {
        if n == 0 {
            return;
        }
        let _p = crate::alloc::pause_metering();
        let mut costs = self.costs.lock().expect("obs costs poisoned");
        let row = costs.entry(path).or_default();
        row.work[kind as usize] = row.work[kind as usize].saturating_add(n);
    }

    /// Aggregate for one phase path.
    pub fn cost_stats(&self, path: &str) -> Option<CostStats> {
        let costs = self.costs.lock().expect("obs costs poisoned");
        costs.get(path).copied()
    }

    /// All phase rows, sorted by path.
    pub fn costs(&self) -> Vec<(&'static str, CostStats)> {
        let costs = self.costs.lock().expect("obs costs poisoned");
        costs.iter().map(|(k, v)| (*k, *v)).collect()
    }

    // ---- merge ----

    /// Folds another registry's contents into this one. Counter,
    /// histogram, and cost merging is integer addition, so any merge
    /// order or grouping produces the identical registry; span
    /// aggregates merge the same way on their nanosecond totals.
    pub fn merge_from(&self, other: &Registry) {
        {
            let theirs = other.counters.lock().expect("obs counters poisoned");
            let mut ours = self.counters.lock().expect("obs counters poisoned");
            for (k, v) in theirs.iter() {
                *ours.slot_for_key(k.clone()) += v;
            }
        }
        {
            let theirs = other.histograms.lock().expect("obs histograms poisoned");
            let mut ours = self.histograms.lock().expect("obs histograms poisoned");
            for (k, h) in theirs.iter() {
                ours.slot_for_key(k.clone()).merge(h);
            }
        }
        {
            let theirs = other.spans.lock().expect("obs spans poisoned");
            let mut ours = self.spans.lock().expect("obs spans poisoned");
            for (k, s) in theirs.iter() {
                ours.entry(k.clone()).or_default().merge(s);
            }
        }
        {
            let theirs = other.costs.lock().expect("obs costs poisoned");
            let mut ours = self.costs.lock().expect("obs costs poisoned");
            for (path, s) in theirs.iter() {
                ours.entry(path).or_default().merge(s);
            }
        }
    }

    /// Rendered keys of every counter and histogram, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let counters = self.counters.lock().expect("obs counters poisoned");
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        let mut names: Vec<String> = counters
            .iter()
            .map(|(k, _)| k.to_string())
            .chain(hists.iter().map(|(k, _)| k.to_string()))
            .collect();
        names.sort();
        names
    }

    // ---- export ----

    /// The deterministic half of the registry — counters and histograms,
    /// sorted by rendered key — as a JSON value tree. Two runs of the
    /// same deterministic program produce byte-identical output here, at
    /// any thread count; wall-clock spans are deliberately excluded.
    pub fn metrics_value(&self) -> Value {
        let counters = self.counters.lock().expect("obs counters poisoned");
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        let counter_map: Vec<(String, Value)> = counters
            .iter()
            .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
            .collect();
        let hist_map: Vec<(String, Value)> = hists
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(bound, n)| Value::Seq(vec![Value::UInt(bound), Value::UInt(n)]))
                    .collect();
                (
                    k.to_string(),
                    Value::Map(vec![
                        ("count".into(), Value::UInt(h.count())),
                        (
                            "sum".into(),
                            Value::UInt(u64::try_from(h.sum()).unwrap_or(u64::MAX)),
                        ),
                        ("min".into(), opt_uint(h.min())),
                        ("max".into(), opt_uint(h.max())),
                        ("p50".into(), opt_uint(h.p50())),
                        ("p95".into(), opt_uint(h.p95())),
                        ("buckets".into(), Value::Seq(buckets)),
                    ]),
                )
            })
            .collect();
        Value::Map(vec![
            ("counters".into(), Value::Map(counter_map)),
            ("histograms".into(), Value::Map(hist_map)),
        ])
    }

    /// Span timings as a JSON value tree (milliseconds, wall-clock — not
    /// comparable across runs; see [`Registry::metrics_value`]).
    pub fn spans_value(&self) -> Value {
        let spans = self.spans.lock().expect("obs spans poisoned");
        let map = spans
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Value::Map(vec![
                        ("count".into(), Value::UInt(s.count)),
                        ("total_ms".into(), Value::Float(ns_to_ms(s.total_ns))),
                        ("self_ms".into(), Value::Float(ns_to_ms(s.self_ns))),
                        ("max_ms".into(), Value::Float(ns_to_ms(s.max_ns))),
                        (
                            "mean_ms".into(),
                            Value::Float(if s.count == 0 {
                                0.0
                            } else {
                                ns_to_ms(s.total_ns) / s.count as f64
                            }),
                        ),
                    ]),
                )
            })
            .collect();
        Value::Map(map)
    }

    /// The deterministic columns of every phase row — enters, allocs,
    /// bytes, frees, and nonzero work units, sorted by path — as a JSON
    /// value tree. Byte-identical across runs and thread counts of a
    /// deterministic program; the wall-clock fields live in
    /// [`Registry::cost_timings_value`].
    pub fn costs_value(&self) -> Value {
        let costs = self.costs.lock().expect("obs costs poisoned");
        let map = costs
            .iter()
            .map(|(path, s)| {
                let work: Vec<(String, Value)> = WorkKind::ALL
                    .iter()
                    .filter(|k| s.work[**k as usize] > 0)
                    .map(|k| (k.name().to_owned(), Value::UInt(s.work[*k as usize])))
                    .collect();
                (
                    (*path).to_owned(),
                    Value::Map(vec![
                        ("enters".into(), Value::UInt(s.enters)),
                        ("allocs".into(), Value::UInt(s.allocs)),
                        ("bytes".into(), Value::UInt(s.bytes)),
                        ("frees".into(), Value::UInt(s.frees)),
                        ("work".into(), Value::Map(work)),
                    ]),
                )
            })
            .collect();
        Value::Map(map)
    }

    /// The wall-clock columns of every phase row (milliseconds — not
    /// comparable across runs; see [`Registry::costs_value`]).
    pub fn cost_timings_value(&self) -> Value {
        let costs = self.costs.lock().expect("obs costs poisoned");
        let map = costs
            .iter()
            .map(|(path, s)| {
                (
                    (*path).to_owned(),
                    Value::Map(vec![
                        ("total_ms".into(), Value::Float(ns_to_ms(s.total_ns))),
                        ("self_ms".into(), Value::Float(ns_to_ms(s.self_ns))),
                    ]),
                )
            })
            .collect();
        Value::Map(map)
    }

    /// Deterministic metrics (counters + histograms) as pretty JSON.
    /// Bit-identical across runs and thread counts of a deterministic
    /// program — the string the thread-matrix tests compare.
    pub fn metrics_json(&self) -> String {
        serde_json::to_string_pretty(&self.metrics_value()).expect("value tree renders")
    }

    /// Deterministic cost profile (phase rows, wall-clock excluded) as
    /// pretty JSON — the string the cost thread-matrix tests and the
    /// cost-profile golden compare.
    pub fn costs_json(&self) -> String {
        serde_json::to_string_pretty(&self.costs_value()).expect("value tree renders")
    }

    /// Full registry — metrics plus wall-clock spans — as pretty JSON.
    pub fn to_json(&self) -> String {
        let Value::Map(mut root) = self.metrics_value() else {
            unreachable!("metrics are a map")
        };
        root.push(("spans".into(), self.spans_value()));
        serde_json::to_string_pretty(&Value::Map(root)).expect("value tree renders")
    }
}

fn write_key(w: &mut Writer, k: &MetricKey) {
    w.put_str(&k.name);
    w.put_seq(&k.labels, |w, (lk, lv)| {
        w.put_str(lk);
        w.put_str(lv);
    });
}

fn read_key(r: &mut Reader<'_>) -> Result<MetricKey, SnapshotError> {
    let name = r.get_str()?;
    let labels = r.get_seq(|r| Ok((r.get_str()?, r.get_str()?)))?;
    Ok(MetricKey { name, labels })
}

impl Snapshot for Registry {
    const TAG: &'static str = "obs-registry";
    const VERSION: u16 = 2;

    /// Serializes the deterministic half of the registry: counters,
    /// histograms, and the deterministic cost columns, in key order.
    /// Span aggregates and the cost rows' nanosecond fields are
    /// wall-clock measurements of *this* process and are deliberately
    /// not captured — a restored registry starts those at zero, exactly
    /// as the manifest's deterministic projection expects. The cost rows
    /// *must* round-trip: a resumed run continues accumulating phase
    /// costs from the checkpointed totals, so the final profile matches
    /// an uninterrupted run bit-for-bit.
    fn write_body(&self, w: &mut Writer) {
        let counters = self.counters.lock().expect("obs counters poisoned");
        w.put_len(counters.len());
        for (k, v) in counters.iter() {
            write_key(w, k);
            w.put_u64(*v);
        }
        drop(counters);
        let hists = self.histograms.lock().expect("obs histograms poisoned");
        w.put_len(hists.len());
        for (k, h) in hists.iter() {
            write_key(w, k);
            w.put_nested(h);
        }
        drop(hists);
        let costs = self.costs.lock().expect("obs costs poisoned");
        w.put_len(costs.len());
        for (path, s) in costs.iter() {
            w.put_str(path);
            w.put_u64(s.enters);
            w.put_u64(s.allocs);
            w.put_u64(s.bytes);
            w.put_u64(s.frees);
            w.put_len(s.work.len());
            for v in &s.work {
                w.put_u64(*v);
            }
        }
    }

    fn read_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let reg = Registry::new();
        {
            let mut counters = reg.counters.lock().expect("obs counters poisoned");
            for _ in 0..r.get_len()? {
                let k = read_key(r)?;
                let v = r.get_u64()?;
                *counters.slot_for_key(k) = v;
            }
        }
        {
            let mut hists = reg.histograms.lock().expect("obs histograms poisoned");
            for _ in 0..r.get_len()? {
                let k = read_key(r)?;
                let h: Histogram = r.get_nested()?;
                *hists.slot_for_key(k) = h;
            }
        }
        {
            let mut costs = reg.costs.lock().expect("obs costs poisoned");
            for _ in 0..r.get_len()? {
                let path = cost::intern_path(&r.get_str()?);
                let mut s = CostStats {
                    enters: r.get_u64()?,
                    allocs: r.get_u64()?,
                    bytes: r.get_u64()?,
                    frees: r.get_u64()?,
                    ..CostStats::default()
                };
                let n = r.get_len()?;
                for i in 0..n {
                    let v = r.get_u64()?;
                    if i < s.work.len() {
                        s.work[i] = v;
                    }
                }
                costs.insert(path, s);
            }
        }
        Ok(reg)
    }
}

fn opt_uint(v: Option<u64>) -> Value {
    match v {
        Some(v) => Value::UInt(v),
        None => Value::Null,
    }
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

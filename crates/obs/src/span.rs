//! RAII span timing with exclusive-time accounting.
//!
//! A [`SpanTimer`](crate::SpanTimer) measures the wall-clock time between
//! its creation and drop and records it under the span's name. Spans nest:
//! each thread keeps a stack of open frames, and when a span closes its
//! elapsed time is credited to the enclosing frame as *child time*. A
//! span's **self time** is its elapsed time minus its children's elapsed
//! time, so summing self time over every span never double-counts a
//! nanosecond — the invariant the property tests pin down.
//!
//! The stack manipulation is separated from the clock
//! ([`Registry::span_enter`](crate::Registry::span_enter) /
//! [`Registry::span_exit`](crate::Registry::span_exit) take the elapsed
//! nanoseconds as an argument) so the accounting logic is deterministic
//! and testable without sleeping.

use std::cell::RefCell;
use std::time::Instant;

use crate::Registry;

thread_local! {
    /// Per-thread stack of open span frames; each entry accumulates the
    /// elapsed nanoseconds of already-closed child spans.
    static FRAMES: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total elapsed nanoseconds (inclusive of children).
    pub total_ns: u64,
    /// Total exclusive nanoseconds (children subtracted).
    pub self_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Folds another span aggregate into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Pushes a fresh child-time accumulator for an opening span.
pub(crate) fn enter_frame() {
    FRAMES.with(|f| f.borrow_mut().push(0));
}

/// Pops the closing span's accumulator, returning its accumulated child
/// time, and credits the closing span's elapsed time to the parent frame
/// (when one is open).
pub(crate) fn exit_frame(elapsed_ns: u64) -> u64 {
    FRAMES.with(|f| {
        let mut frames = f.borrow_mut();
        let child_ns = frames.pop().unwrap_or(0);
        if let Some(parent) = frames.last_mut() {
            *parent = parent.saturating_add(elapsed_ns);
        }
        child_ns
    })
}

/// RAII wall-clock span. Created by [`Registry::span`]; records on drop.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanTimer<'a> {
    registry: &'a Registry,
    name: String,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    pub(crate) fn new(registry: &'a Registry, name: &str) -> Self {
        enter_frame();
        SpanTimer {
            registry,
            name: name.to_owned(),
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.span_exit(&self.name, elapsed);
    }
}

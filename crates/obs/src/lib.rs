//! # ss-obs
//!
//! Zero-dependency telemetry for the study pipeline: a thread-safe
//! [`Registry`] of named [`Counter`](Registry::count)s, log-scale
//! [`Histogram`]s (fixed power-of-two buckets with `p50`/`p95`/`max`),
//! and RAII [`SpanTimer`]s with exclusive-time accounting — plus label
//! support (`crawl.psr{vertical=Uggs}`), a macro-lite recording API
//! ([`count!`], [`observe!`], [`time!`]), registry merging, and JSON
//! export through the vendored `serde_json`.
//!
//! ## Determinism contract
//!
//! The registry is split into a **deterministic half** (counters and
//! histograms — pure integer aggregates of what the program *did*) and a
//! **wall-clock half** (span timings). [`Registry::merge_from`] on the
//! deterministic half is associative and commutative, so per-worker
//! registries merged in any fixed order reproduce the single-threaded
//! registry bit-for-bit; [`Registry::metrics_json`] exports only that
//! half and is the string thread-matrix tests compare. Span timings are
//! exported separately ([`Registry::spans_value`]) and never participate
//! in determinism checks.
//!
//! ## Usage
//!
//! ```
//! use ss_obs::Registry;
//!
//! let reg = Registry::new();
//! ss_obs::count!(reg, "crawl.fetch");
//! ss_obs::count!(reg, "crawl.fetch", 2, vertical = "Uggs");
//! ss_obs::observe!(reg, "crawl.psr_rank", 7);
//! let answer = ss_obs::time!(reg, "stage.crawl", { 6 * 7 });
//! assert_eq!(answer, 42);
//! assert_eq!(reg.counter_total("crawl.fetch"), 3);
//! assert_eq!(reg.counter("crawl.fetch{vertical=Uggs}"), 2);
//! assert_eq!(reg.span_stats("stage.crawl").unwrap().count, 1);
//! ```

#![deny(unsafe_code)] // `allow`ed only for the counting global allocator.
#![warn(missing_docs)]

mod alloc;
mod cost;
mod histogram;
mod registry;
mod span;
mod trace;

pub use crate::alloc::{pause_metering, thread_alloc_counts, CountingAlloc, MeterPause};
pub use cost::{charge, folded_cost, folded_wall, render_tree, CostScope, CostStats, WorkKind};
pub use histogram::{Histogram, BUCKETS};
pub use registry::{MetricKey, Registry};
pub use span::{SpanStats, SpanTimer};
pub use trace::{ChromeTrace, FlightRecorder, TraceEvent, TraceLevel};

/// A rendered metric label value — borrowed when the source type already
/// is a string, owned only when rendering had to allocate (numbers).
pub enum Label<'a> {
    /// Borrowed straight from the labeled value.
    Str(&'a str),
    /// Rendered into an owned string.
    Owned(String),
}

impl Label<'_> {
    /// The label text.
    pub fn as_str(&self) -> &str {
        match self {
            Label::Str(s) => s,
            Label::Owned(s) => s,
        }
    }
}

/// Conversion into a metric [`Label`], used by the [`count!`] and
/// [`observe!`] macros. String-like values and booleans convert without
/// allocating — the hot-path contract the allocation meter pinned down;
/// numeric labels render through an owned string.
pub trait ToLabel {
    /// Renders the value as a label.
    fn to_label(&self) -> Label<'_>;
}

impl ToLabel for str {
    fn to_label(&self) -> Label<'_> {
        Label::Str(self)
    }
}

impl ToLabel for String {
    fn to_label(&self) -> Label<'_> {
        Label::Str(self)
    }
}

impl ToLabel for bool {
    fn to_label(&self) -> Label<'_> {
        Label::Str(if *self { "true" } else { "false" })
    }
}

impl<T: ToLabel + ?Sized> ToLabel for &T {
    fn to_label(&self) -> Label<'_> {
        (**self).to_label()
    }
}

macro_rules! impl_to_label_numeric {
    ($($t:ty),+) => {$(
        impl ToLabel for $t {
            fn to_label(&self) -> Label<'_> {
                Label::Owned(self.to_string())
            }
        }
    )+};
}
impl_to_label_numeric!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Increments a counter: `count!(reg, "name")`, `count!(reg, "name", n)`,
/// or with labels `count!(reg, "name", n, vertical = name, kind = "x")`.
/// Label values go through [`ToLabel`], so string-like labels don't
/// allocate.
#[macro_export]
macro_rules! count {
    ($reg:expr, $name:expr) => {
        $reg.count($name, 1)
    };
    ($reg:expr, $name:expr, $n:expr) => {
        $reg.count($name, $n as u64)
    };
    ($reg:expr, $name:expr, $n:expr, $($k:ident = $v:expr),+ $(,)?) => {{
        // Borrow-then-shadow: the first binding keeps any temporary the
        // label expression produced alive for the whole block.
        $(let $k = &$v; let $k = $crate::ToLabel::to_label(&$k);)+
        $reg.count_with($name, &[$((stringify!($k), $k.as_str())),+], $n as u64)
    }};
}

/// Records a histogram observation: `observe!(reg, "name", value)`, or
/// with labels `observe!(reg, "name", value, vertical = name)`. Label
/// values go through [`ToLabel`], so string-like labels don't allocate.
#[macro_export]
macro_rules! observe {
    ($reg:expr, $name:expr, $v:expr) => {
        $reg.observe($name, $v as u64)
    };
    ($reg:expr, $name:expr, $v:expr, $($k:ident = $lv:expr),+ $(,)?) => {{
        $(let $k = &$lv; let $k = $crate::ToLabel::to_label(&$k);)+
        $reg.observe_with($name, &[$((stringify!($k), $k.as_str())),+], $v as u64)
    }};
}

/// Times an expression under a span name and evaluates to its value:
/// `let x = time!(reg, "stage.crawl", { expensive() });`.
#[macro_export]
macro_rules! time {
    ($reg:expr, $name:expr, $body:expr) => {{
        let _obs_span_guard = $reg.span($name);
        $body
    }};
}

/// Records a per-entity [`TraceEvent`] into a [`FlightRecorder`]:
/// `trace!(rec, day_index, "stage.crawl", domain_id, "psr rank={rank}")`.
///
/// Compile-cheap no-op below [`TraceLevel::Event`]: the `format!` (and
/// every argument expression inside it) is only evaluated after the
/// level check passes, so a disabled recorder costs one branch.
#[macro_export]
macro_rules! trace {
    ($rec:expr, $day:expr, $stage:expr, $entity:expr, $($arg:tt)+) => {
        if $rec.detailed() {
            $rec.record($day, $stage, ($entity) as u64, format!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::proptest;

    #[test]
    fn labels_are_order_insensitive() {
        let reg = Registry::new();
        reg.count_with("m", &[("b", "2"), ("a", "1")], 1);
        reg.count_with("m", &[("a", "1"), ("b", "2")], 2);
        assert_eq!(reg.counter("m{a=1,b=2}"), 3);
        assert_eq!(reg.metric_names(), vec!["m{a=1,b=2}".to_owned()]);
    }

    #[test]
    fn merge_folds_counters_histograms_and_spans() {
        let a = Registry::new();
        let b = Registry::new();
        a.count("c", 2);
        b.count("c", 3);
        a.observe("h", 10);
        b.observe("h", 20);
        a.span_enter();
        a.span_exit("s", 100);
        b.span_enter();
        b.span_exit("s", 50);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        let s = a.span_stats("s").unwrap();
        assert_eq!((s.count, s.total_ns, s.max_ns), (2, 150, 100));
    }

    #[test]
    fn metrics_json_excludes_spans_to_json_includes_them() {
        let reg = Registry::new();
        reg.count("c", 1);
        let _t = reg.span("wall");
        drop(_t);
        assert!(!reg.metrics_json().contains("wall"));
        assert!(reg.to_json().contains("wall"));
    }

    #[test]
    fn trace_macro_is_a_noop_when_disabled() {
        let off = FlightRecorder::disabled();
        let mut evaluated = false;
        crate::trace!(off, 3, "stage.crawl", 9, "{}", {
            evaluated = true;
            "side effect"
        });
        assert!(!evaluated, "format args must not run when disabled");
        assert!(off.is_empty());

        let on = FlightRecorder::new(TraceLevel::Event, 8);
        crate::trace!(on, 3, "stage.crawl", 9, "rank={}", 4);
        assert_eq!(on.len(), 1);
        assert_eq!(on.events()[0].detail, "rank=4");
    }

    #[test]
    fn span_timer_nests_via_raii() {
        let reg = Registry::new();
        {
            let _outer = reg.span("outer");
            let _inner = reg.span("inner");
        }
        let outer = reg.span_stats("outer").unwrap();
        let inner = reg.span_stats("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The child's full elapsed time was carved out of the parent.
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        // The child had no children: all its time is self time.
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    /// Replays a generated sequence of counter increments split across
    /// `k` registries, merged in two different groupings; both must equal
    /// the registry that saw every increment directly.
    fn counters_by_split(ops: &[(u8, u8, u32)]) -> (Registry, Registry, Registry) {
        let direct = Registry::new();
        let parts: Vec<Registry> = (0..4).map(|_| Registry::new()).collect();
        for (part, name, n) in ops {
            let name = format!("c{}", name % 5);
            direct.count(&name, u64::from(*n));
            parts[(*part % 4) as usize].count(&name, u64::from(*n));
        }
        // Left fold: ((p0 + p1) + p2) + p3.
        let left = Registry::new();
        for p in &parts {
            left.merge_from(p);
        }
        // Right-ish fold with a different association and order:
        // p3 + (p2 + (p1 + p0)).
        let right = Registry::new();
        for p in parts.iter().rev() {
            right.merge_from(p);
        }
        (direct, left, right)
    }

    proptest! {
        /// Counter merge is associative and commutative: any grouping or
        /// order of per-worker registries equals direct recording.
        #[test]
        fn counter_merge_is_associative_and_commutative(
            ops in proptest::collection::vec((0u8..4, 0u8..5, 0u32..1000), 0..64)
        ) {
            let (direct, left, right) = counters_by_split(&ops);
            assert_eq!(direct.metrics_json(), left.metrics_json());
            assert_eq!(direct.metrics_json(), right.metrics_json());
        }

        /// Histogram merge is order-independent: observations scattered
        /// across workers and merged in opposite orders produce the exact
        /// histogram of the full observation stream.
        #[test]
        fn histogram_merge_is_order_independent(
            obs in proptest::collection::vec((0u8..4, 0u64..1_000_000), 0..64)
        ) {
            let direct = Registry::new();
            let parts: Vec<Registry> = (0..4).map(|_| Registry::new()).collect();
            for (part, v) in &obs {
                direct.observe("h", *v);
                parts[(*part % 4) as usize].observe("h", *v);
            }
            let fwd = Registry::new();
            for p in &parts {
                fwd.merge_from(p);
            }
            let rev = Registry::new();
            for p in parts.iter().rev() {
                rev.merge_from(p);
            }
            assert_eq!(direct.metrics_json(), fwd.metrics_json());
            assert_eq!(direct.metrics_json(), rev.metrics_json());
            assert_eq!(direct.histogram("h"), fwd.histogram("h"));
        }

        /// Span nesting never double-counts: for any well-formed nesting
        /// replayed through `span_enter`/`span_exit` with synthetic
        /// durations, the exclusive (self) times across all spans sum
        /// exactly to the root spans' total elapsed time — every
        /// nanosecond attributed once, none twice.
        /// Cost-row merge is associative and commutative: synthetic
        /// per-phase deltas scattered across worker registries and
        /// folded in different groupings always equal direct recording.
        #[test]
        fn cost_merge_is_associative_and_commutative(
            ops in proptest::collection::vec(
                ((0u8..4, 0u8..3), (0u64..1000, 0u64..4096), (0usize..WorkKind::COUNT, 0u64..100)),
                0..64,
            )
        ) {
            const PATHS: [&str; 3] = ["p/a", "p/b", "q"];
            let direct = Registry::new();
            let parts: Vec<Registry> = (0..4).map(|_| Registry::new()).collect();
            for ((part, path), (allocs, bytes), (kind, n)) in &ops {
                let mut stats = CostStats {
                    enters: 1,
                    allocs: *allocs,
                    bytes: *bytes,
                    frees: *allocs,
                    ..CostStats::default()
                };
                stats.work[*kind] = *n;
                let path = PATHS[(*path % 3) as usize];
                direct.record_cost(path, stats);
                parts[(*part % 4) as usize].record_cost(path, stats);
            }
            let left = Registry::new();
            for p in &parts {
                left.merge_from(p);
            }
            let right = Registry::new();
            for p in parts.iter().rev() {
                right.merge_from(p);
            }
            assert_eq!(direct.costs_json(), left.costs_json());
            assert_eq!(direct.costs_json(), right.costs_json());
        }

        #[test]
        fn span_nesting_never_double_counts(
            shape in proptest::collection::vec((0u8..3, 0u8..2, 1u64..1_000_000), 1..32)
        ) {
            let reg = Registry::new();
            // Shadow stack mirroring the registry's frames: each open span
            // carries its own exclusive work `own` and accumulates its
            // children's elapsed time, exactly like a real timed region.
            let mut shadow: Vec<(String, u64, u64)> = Vec::new(); // (name, own, child)
            let mut roots_elapsed = 0u64;
            let mut own_work_total = 0u64;
            let close_innermost = |reg: &Registry,
                                       shadow: &mut Vec<(String, u64, u64)>,
                                       roots: &mut u64| {
                let Some((name, own, child)) = shadow.pop() else { return };
                let elapsed = own + child;
                reg.span_exit(&name, elapsed);
                match shadow.last_mut() {
                    Some(parent) => parent.2 += elapsed,
                    None => *roots += elapsed,
                }
            };
            for (kind, close_after, dur) in &shape {
                let name = format!("s{kind}");
                reg.span_enter();
                shadow.push((name, *dur, 0));
                own_work_total += *dur;
                if *close_after == 1 {
                    close_innermost(&reg, &mut shadow, &mut roots_elapsed);
                }
            }
            while !shadow.is_empty() {
                close_innermost(&reg, &mut shadow, &mut roots_elapsed);
            }
            let sum_self: u64 = reg.spans().iter().map(|(_, s)| s.self_ns).sum();
            // Exclusive times partition the root elapsed exactly: nothing
            // double-counted (sum equals the work actually performed),
            // nothing lost (it also equals the roots' elapsed total).
            // Note `total_ns` is *inclusive* and aggregates per name, so
            // it can legitimately exceed the roots' elapsed when a span
            // nests inside a same-named span; only self time partitions.
            assert_eq!(sum_self, roots_elapsed);
            assert_eq!(sum_self, own_work_total);
        }
    }
}

#[cfg(test)]
mod cost_tests {
    use super::*;
    use serde::Value;

    #[test]
    fn cost_scope_attributes_exclusively() {
        let reg = Registry::new();
        {
            let _outer = reg.cost_scope("t/outer");
            let outer_buf: Vec<u8> = Vec::with_capacity(64);
            {
                let _inner = reg.cost_scope("t/outer/inner");
                let inner_buf: Vec<u8> = Vec::with_capacity(128);
                charge(WorkKind::DocsFetched, 3);
                drop(inner_buf);
            }
            charge(WorkKind::JsVmSteps, 5);
            drop(outer_buf);
        }
        let outer = reg.cost_stats("t/outer").unwrap();
        let inner = reg.cost_stats("t/outer/inner").unwrap();
        assert_eq!((inner.enters, inner.allocs, inner.frees), (1, 1, 1));
        assert_eq!(inner.bytes, 128);
        assert_eq!(inner.work[WorkKind::DocsFetched as usize], 3);
        // The child's heap traffic and work were carved out of the parent.
        assert_eq!((outer.enters, outer.allocs, outer.frees), (1, 1, 1));
        assert_eq!(outer.bytes, 64);
        assert_eq!(outer.work[WorkKind::DocsFetched as usize], 0);
        assert_eq!(outer.work[WorkKind::JsVmSteps as usize], 5);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn work_scope_records_work_but_zero_alloc_columns() {
        let reg = Registry::new();
        {
            let _w = reg.work_scope("t/work");
            let buf: Vec<u8> = Vec::with_capacity(256);
            charge(WorkKind::EventsPlanned, 7);
            drop(buf);
        }
        let s = reg.cost_stats("t/work").unwrap();
        assert_eq!((s.enters, s.allocs, s.bytes, s.frees), (0, 0, 0, 0));
        assert_eq!(s.work[WorkKind::EventsPlanned as usize], 7);
        assert!(s.total_ns > 0);
    }

    #[test]
    fn charge_without_open_scope_is_a_noop() {
        let reg = Registry::new();
        charge(WorkKind::PsrRowsScanned, 100);
        assert!(reg.costs().is_empty());
    }

    /// The crawl-plane merge pattern: per-item registries, items
    /// partitioned across worker threads, merged in item order. The
    /// deterministic cost columns must be byte-identical at 1/2/8
    /// threads — the contract `repro profile --threads` relies on.
    fn matrix_run(threads: usize) -> String {
        let items = 12;
        let regs: Vec<Registry> = (0..items).map(|_| Registry::new()).collect();
        std::thread::scope(|s| {
            for t in 0..threads {
                let regs = &regs;
                s.spawn(move || {
                    for i in (t..items).step_by(threads) {
                        let _scope = regs[i].cost_scope("w/phase");
                        let mut v: Vec<u64> = Vec::new();
                        for j in 0..(i + 1) * 3 {
                            v.push(j as u64);
                        }
                        charge(WorkKind::PostingsWalked, v.len() as u64);
                    }
                });
            }
        });
        let merged = Registry::new();
        for r in &regs {
            merged.merge_from(r);
        }
        merged.costs_json()
    }

    #[test]
    fn cost_matrix_is_bit_identical_across_thread_counts() {
        let serial = matrix_run(1);
        assert_eq!(serial, matrix_run(2));
        assert_eq!(serial, matrix_run(8));
        assert!(serial.contains("postings_walked"));
    }

    #[test]
    fn costs_json_excludes_wall_clock_fields() {
        let reg = Registry::new();
        {
            let _scope = reg.cost_scope("t/phase");
        }
        assert!(!reg.costs_json().contains("_ms"));
        assert!(!reg.costs_json().contains("_ns"));
        let Value::Map(timings) = reg.cost_timings_value() else {
            panic!("timings are a map")
        };
        assert_eq!(timings[0].0, "t/phase");
    }

    #[test]
    fn folded_exports_use_semicolon_stacks() {
        let reg = Registry::new();
        let mut stats = CostStats {
            allocs: 10,
            self_ns: 5_000_000,
            ..CostStats::default()
        };
        stats.work[WorkKind::DocsFetched as usize] = 4;
        reg.record_cost("crawl/fetch", stats);
        assert_eq!(folded_cost(&reg), "crawl;fetch 14\n");
        assert_eq!(folded_wall(&reg), "crawl;fetch 5000\n");
        assert!(render_tree(&reg).contains("docs_fetched=4"));
    }

    #[test]
    fn registry_snapshot_round_trips_cost_rows() {
        use ss_types::snapshot::Snapshot;
        let reg = Registry::new();
        reg.count("c", 3);
        {
            let _scope = reg.cost_scope("t/a");
            let buf: Vec<u8> = Vec::with_capacity(32);
            charge(WorkKind::JsCompiles, 2);
            drop(buf);
        }
        let restored = Registry::decode(&reg.encode()).expect("registry round-trips");
        // Deterministic columns round-trip; wall-clock fields reset.
        let before = reg.cost_stats("t/a").unwrap();
        let after = restored.cost_stats("t/a").unwrap();
        assert_eq!(
            (before.enters, before.allocs, before.bytes, before.frees),
            (after.enters, after.allocs, after.bytes, after.frees)
        );
        assert_eq!(before.work, after.work);
        assert_eq!((after.total_ns, after.self_ns), (0, 0));
        assert_eq!(reg.costs_json(), restored.costs_json());
        assert_eq!(restored.counter("c"), 3);
    }
}

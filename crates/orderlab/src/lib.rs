//! # ss-orders
//!
//! The order-side measurement programme of §4.3–§4.5:
//!
//! * [`purchasepair`] — the purchase-pair technique: weekly test orders on
//!   monitored stores (capped at three per campaign per day to stay under
//!   the radar), yielding order-number samples whose deltas upper-bound
//!   customer order volume; rate estimation with interpolation over gaps;
//! * [`transactions`] — real purchases: completing checkout, recording the
//!   payment processor and settling bank (BIN concentration, §4.3.2), and
//!   following the packing slip to the supplier;
//! * [`analytics`] — the AWStats scraper: fetching each leaky store's
//!   public report, parsing visits / pages / referrers / per-day rows, and
//!   deriving conversion metrics (§4.4, §5.2.3);
//! * [`supplier_scrape`] — bulk harvesting of the supplier's shipping
//!   records, 20 order numbers per lookup (§4.5).
//!
//! Everything here observes the world strictly through `Web::fetch`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod purchasepair;
pub mod supplier_scrape;
pub mod transactions;

pub use purchasepair::{OrderSampler, SamplerConfig};

//! The AWStats scraper (§4.4) and the conversion metrics of §5.2.3.
//!
//! Stores that left their AWStats installation public expose visits, pages,
//! referrers and per-day rows at the default URL. The scraper fetches and
//! parses those reports; the analysis combines them with order-rate
//! estimates into the paper's conversion numbers (visits per sale, pages
//! per visit, referrer-set fraction, doorway coverage).

use ss_types::{SimDate, Url};
use ss_web::http::{Fetcher, Request, UserAgent};
use ss_web::Document;

/// A parsed AWStats report.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedReport {
    /// Period label, `YYYY-MM`.
    pub period: String,
    /// Visits in the period.
    pub visits: u64,
    /// HTML pages served.
    pub pages: u64,
    /// Referrer hosts with visit counts.
    pub referrers: Vec<(String, u64)>,
    /// Visits with no referrer.
    pub direct_visits: u64,
    /// Per-day `(date, visits, pages)` rows.
    pub daily: Vec<(SimDate, u64, u64)>,
}

/// Fetches and parses a store's AWStats report for a month
/// (`month = "YYYY-MM"`, or `None` for the current month).
pub fn fetch_report(web: &impl Fetcher, site: &str, month: Option<&str>) -> Option<ParsedReport> {
    let host = ss_types::DomainName::parse(site).ok()?;
    let query = match month {
        Some(m) => format!("config={site}&month={m}"),
        None => format!("config={site}"),
    };
    let url = Url::new(host, "/awstats/awstats.pl", &query);
    let (resp, _) = web.fetch(&Request {
        url,
        user_agent: UserAgent::Browser,
        referrer: None,
    });
    if resp.status != 200 {
        return None;
    }
    parse_report(&resp.body)
}

/// Parses an AWStats report page.
pub fn parse_report(body: &str) -> Option<ParsedReport> {
    let doc = Document::parse(body);
    let num = |id: &str| -> Option<u64> { doc.by_id(id)?.text_content().trim().parse().ok() };
    let period = doc.by_id("period")?.text_content().trim().to_owned();
    let visits = num("visits")?;
    let pages = num("pages")?;

    let mut referrers = Vec::new();
    let mut direct_visits = 0;
    for tr in doc.find_all("tr") {
        match tr.attr("class") {
            Some("referrer") => {
                let tds: Vec<String> = tr
                    .children
                    .iter()
                    .filter_map(|n| n.as_element())
                    .map(|td| td.text_content())
                    .collect();
                if tds.len() == 2 {
                    if let Ok(n) = tds[1].trim().parse() {
                        referrers.push((tds[0].trim().to_owned(), n));
                    }
                }
            }
            Some("direct") => {
                let tds: Vec<String> = tr
                    .children
                    .iter()
                    .filter_map(|n| n.as_element())
                    .map(|td| td.text_content())
                    .collect();
                if let Some(last) = tds.last() {
                    direct_visits = last.trim().parse().unwrap_or(0);
                }
            }
            _ => {}
        }
    }

    let mut daily = Vec::new();
    for tr in doc.find_all("tr") {
        if tr.attr("class") != Some("dayrow") {
            continue;
        }
        let tds: Vec<String> = tr
            .children
            .iter()
            .filter_map(|n| n.as_element())
            .map(|td| td.text_content())
            .collect();
        if tds.len() != 3 {
            continue;
        }
        let mut parts = tds[0].split('-');
        let (Some(y), Some(m), Some(d)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(y), Ok(m), Ok(d)) = (y.parse(), m.parse(), d.parse()) else {
            continue;
        };
        let Ok(date) = SimDate::from_ymd(y, m, d) else {
            continue;
        };
        let (Ok(v), Ok(p)) = (tds[1].trim().parse(), tds[2].trim().parse()) else {
            continue;
        };
        daily.push((date, v, p));
    }

    Some(ParsedReport {
        period,
        visits,
        pages,
        referrers,
        direct_visits,
        daily,
    })
}

/// Conversion metrics across a set of monthly reports plus an order count
/// over the same window (§5.2.3's coco*.com arithmetic).
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionMetrics {
    /// Total visits.
    pub visits: u64,
    /// Fraction of visits with a referrer set.
    pub referrer_fraction: f64,
    /// Mean HTML pages per visit.
    pub pages_per_visit: f64,
    /// Orders / visits.
    pub conversion_rate: f64,
    /// Visits per sale (reciprocal of the conversion rate).
    pub visits_per_sale: f64,
    /// Distinct referrer hosts (candidate doorways).
    pub referrer_hosts: Vec<String>,
}

/// Computes conversion metrics from reports plus an estimated order count.
pub fn conversion_metrics(reports: &[ParsedReport], orders: f64) -> Option<ConversionMetrics> {
    let visits: u64 = reports.iter().map(|r| r.visits).sum();
    if visits == 0 {
        return None;
    }
    let pages: u64 = reports.iter().map(|r| r.pages).sum();
    let referred: u64 = reports
        .iter()
        .flat_map(|r| &r.referrers)
        .map(|(_, n)| n)
        .sum();
    let mut hosts: Vec<String> = reports
        .iter()
        .flat_map(|r| r.referrers.iter().map(|(h, _)| h.clone()))
        .collect();
    hosts.sort();
    hosts.dedup();
    let conversion = orders / visits as f64;
    Some(ConversionMetrics {
        visits,
        referrer_fraction: referred as f64 / visits as f64,
        pages_per_visit: pages as f64 / visits as f64,
        conversion_rate: conversion,
        visits_per_sale: if conversion > 0.0 {
            1.0 / conversion
        } else {
            f64::INFINITY
        },
        referrer_hosts: hosts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_web::pagegen::awstats::{page, TrafficReport};

    fn sample_page() -> String {
        page(
            "coco.com",
            &TrafficReport {
                period: "2014-07".into(),
                unique_visitors: 700,
                visits: 1_000,
                pages: 5_600,
                hits: 20_000,
                referrers: vec![("door1.com".into(), 400), ("door2.com".into(), 200)],
                direct_visits: 400,
                daily: vec![
                    ("2014-07-01".into(), 500, 2_800),
                    ("2014-07-02".into(), 500, 2_800),
                ],
            },
        )
    }

    #[test]
    fn parse_roundtrips_generator_output() {
        let r = parse_report(&sample_page()).unwrap();
        assert_eq!(r.period, "2014-07");
        assert_eq!(r.visits, 1_000);
        assert_eq!(r.pages, 5_600);
        assert_eq!(r.direct_visits, 400);
        assert_eq!(r.referrers.len(), 2);
        assert_eq!(r.daily.len(), 2);
        assert_eq!(r.daily[0].0, SimDate::from_ymd(2014, 7, 1).unwrap());
        assert_eq!(r.daily[0].1, 500);
    }

    #[test]
    fn conversion_metrics_match_arithmetic() {
        let r = parse_report(&sample_page()).unwrap();
        let m = conversion_metrics(&[r], 7.0).unwrap();
        assert_eq!(m.visits, 1_000);
        assert!((m.referrer_fraction - 0.6).abs() < 1e-9);
        assert!((m.pages_per_visit - 5.6).abs() < 1e-9);
        assert!((m.conversion_rate - 0.007).abs() < 1e-9);
        assert!((m.visits_per_sale - 142.857).abs() < 0.01);
        assert_eq!(
            m.referrer_hosts,
            vec!["door1.com".to_owned(), "door2.com".to_owned()]
        );
    }

    #[test]
    fn non_reports_yield_none() {
        assert_eq!(parse_report("<p>not awstats</p>"), None);
        assert_eq!(conversion_metrics(&[], 3.0), None);
    }

    #[test]
    fn fetch_against_the_world() {
        use ss_eco::{ScenarioConfig, World};
        let mut w = World::build(ScenarioConfig::tiny(37)).unwrap();
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 10));
        let store = w
            .stores
            .iter()
            .find(|s| s.awstats_public && !s.months.is_empty() && !s.retired)
            .expect("some leaky store with traffic");
        let site = w.domains.get(store.current_domain).name.as_str().to_owned();
        let visits_truth: u64 = store.months.last().unwrap().visits;
        let r = fetch_report(&w, &site, None).expect("report should parse");
        assert_eq!(r.visits, visits_truth);
        assert!(!r.daily.is_empty());

        // Private stores 404.
        let private = w
            .stores
            .iter()
            .find(|s| !s.awstats_public && !s.retired)
            .map(|s| s.current_domain);
        if let Some(dom) = private {
            let site = w.domains.get(dom).name.as_str().to_owned();
            assert_eq!(fetch_report(&w, &site, None), None);
        }
    }
}

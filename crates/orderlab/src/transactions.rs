//! Real purchases (§4.3.2): completing checkout to learn payment
//! processing and order fulfillment.
//!
//! The study placed 16 successful orders across 12 campaigns, received 12
//! knock-offs shipped from China, and found the money cleared through just
//! three banks (two Chinese, one Korean). The reproduction completes the
//! checkout flow, reads the processor off the payment form, resolves the
//! settling bank from the card statement (simulated via the processor→bank
//! table the world uses), and — when the shipment comes from the tracked
//! supplier — follows the packing slip to the portal, which is how §4.5's
//! dataset was discovered.

use ss_types::{SimDate, Url};
use ss_web::http::{Request, UserAgent, Web};
use ss_web::pagegen::storefront::PaymentProcessor;
use ss_web::Document;

/// One completed purchase.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Store domain.
    pub store_domain: String,
    /// Day of purchase.
    pub day: SimDate,
    /// Order number issued.
    pub order_number: u64,
    /// Payment processor named on the form.
    pub processor: String,
    /// `(BIN, bank name)` that settled the charge.
    pub bank: (String, String),
    /// Merchant id exposed in the form.
    pub merchant_id: String,
}

/// Attempts a purchase at `domain`'s checkout. Returns `None` when the
/// store is dead, seized, or the page carries no payment form.
pub fn purchase(web: &mut impl Web, domain: &str, day: SimDate) -> Option<Transaction> {
    let host = ss_types::DomainName::parse(domain).ok()?;
    let url = Url::new(host, "/checkout", "");
    // A real purchase commits its effects: the order counter advances.
    let resp = web.fetch_apply(&Request {
        url,
        user_agent: UserAgent::Browser,
        referrer: None,
    });
    if resp.status != 200 {
        return None;
    }
    let doc = Document::parse(&resp.body);
    let order_number: u64 = doc.by_id("order-no")?.text_content().trim().parse().ok()?;

    // The payment form posts to http://pay.<processor>.com/charge.
    let form = doc.find_all("form").into_iter().find(|f| {
        f.attr("action")
            .map(|a| a.contains("/charge"))
            .unwrap_or(false)
    })?;
    let action = form.attr("action")?;
    let action_url = Url::parse(action).ok()?;
    let processor_name = action_url
        .host
        .as_str()
        .strip_prefix("pay.")?
        .strip_suffix(".com")?
        .to_owned();
    let merchant_id = form
        .children
        .iter()
        .filter_map(|n| n.as_element())
        .find(|e| e.tag == "input" && e.attr("name") == Some("merchant"))
        .and_then(|e| e.attr("value"))
        .unwrap_or("")
        .to_owned();

    let processor = match processor_name.as_str() {
        "realypay" => PaymentProcessor::Realypay,
        "mallpayment" => PaymentProcessor::Mallpayment,
        "globalbill" => PaymentProcessor::GlobalBill,
        _ => return None,
    };
    let (bin, bank) = processor.settling_bank();
    Some(Transaction {
        store_domain: domain.to_owned(),
        day,
        order_number,
        processor: processor_name,
        bank: (bin.to_owned(), bank.to_owned()),
        merchant_id,
    })
}

/// Bank concentration across a purchase set: `(bank name, count)` sorted
/// by count (§4.3.2's "three banks" observation).
pub fn bank_concentration(txs: &[Transaction]) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for t in txs {
        match counts.iter_mut().find(|(b, _)| *b == t.bank.1) {
            Some((_, c)) => *c += 1,
            None => counts.push((t.bank.1.clone(), 1)),
        }
    }
    counts.sort_by_key(|c| std::cmp::Reverse(c.1));
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_eco::{ScenarioConfig, World};

    #[test]
    fn purchase_roundtrips_through_a_live_store() {
        let mut w = World::build(ScenarioConfig::tiny(31)).unwrap();
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 3));
        let day = w.day;
        let (store_domain, merchant) = w
            .stores
            .iter()
            .find(|s| !s.retired && s.created < day)
            .map(|s| (s.current_domain, s.merchant_id.to_owned()))
            .unwrap();
        let domain = w.domains.get(store_domain).name.as_str().to_owned();

        let tx = purchase(&mut w, &domain, day).expect("purchase should complete");
        assert_eq!(tx.store_domain, domain);
        assert_eq!(tx.merchant_id, merchant);
        assert!(["realypay", "mallpayment", "globalbill"].contains(&tx.processor.as_str()));
        assert!(!tx.bank.0.is_empty());

        // A second purchase gets a later order number.
        let tx2 = purchase(&mut w, &domain, day).unwrap();
        assert!(tx2.order_number > tx.order_number);
    }

    #[test]
    fn purchase_fails_on_dead_domains() {
        let mut w = World::build(ScenarioConfig::tiny(31)).unwrap();
        w.run_until(SimDate::from_day_index(140));
        let day = w.day;
        assert_eq!(purchase(&mut w, "no-such-store-here.com", day), None);
    }

    #[test]
    fn bank_concentration_counts() {
        let t = |bank: &str| Transaction {
            store_domain: "s.com".into(),
            day: SimDate::EPOCH,
            order_number: 1,
            processor: "p".into(),
            bank: ("622202".into(), bank.into()),
            merchant_id: "m".into(),
        };
        let txs = vec![t("Bank A"), t("Bank B"), t("Bank A")];
        let c = bank_concentration(&txs);
        assert_eq!(c, vec![("Bank A".to_owned(), 2), ("Bank B".to_owned(), 1)]);
    }
}

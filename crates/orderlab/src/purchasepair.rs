//! The purchase-pair technique (§4.3.1).
//!
//! Stores hand out monotonically increasing order numbers *before* payment,
//! so creating a test order at two points in time bounds the number of
//! orders placed in between. The sampler visits each monitored store's
//! checkout on a weekly cadence (at most three orders per campaign per day,
//! as the study did to avoid tipping off stores or processors), records the
//! order numbers, and estimates daily order rates from the deltas.

use std::collections::HashMap;

use ss_types::{SimDate, Url};
use ss_web::http::{Request, UserAgent, Web};
use ss_web::Document;

use ss_stats::DailySeries;

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Days between samples of the same store (paper: weekly).
    pub interval_days: u32,
    /// Maximum test orders per campaign per day (paper: 3).
    pub per_campaign_per_day: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            interval_days: 7,
            per_campaign_per_day: 3,
        }
    }
}

/// One order-number sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderSample {
    /// Sampling day.
    pub day: SimDate,
    /// The order number the checkout displayed.
    pub order_number: u64,
}

/// A store under order monitoring. `campaign_key` is whatever grouping the
/// analyst uses for the rate cap (the classifier's campaign name, or the
/// store domain itself before attribution).
#[derive(Debug, Clone)]
pub struct MonitoredStore {
    /// Store domain name.
    pub domain: String,
    /// Grouping key for the per-campaign daily cap.
    pub campaign_key: String,
    /// Collected samples, in time order.
    pub samples: Vec<OrderSample>,
    /// Day of the last sample attempt (successful or not).
    pub last_attempt: Option<SimDate>,
}

/// The sampling programme across all monitored stores.
#[derive(Debug)]
pub struct OrderSampler {
    /// Configuration.
    pub cfg: SamplerConfig,
    /// Monitored stores, keyed by domain.
    pub stores: HashMap<String, MonitoredStore>,
    /// Total test orders created.
    pub orders_created: usize,
}

impl OrderSampler {
    /// Creates an empty sampler.
    pub fn new(cfg: SamplerConfig) -> Self {
        OrderSampler {
            cfg,
            stores: HashMap::new(),
            orders_created: 0,
        }
    }

    /// Adds a store to the monitoring set (idempotent).
    pub fn monitor(&mut self, domain: &str, campaign_key: &str) {
        self.stores
            .entry(domain.to_owned())
            .or_insert_with(|| MonitoredStore {
                domain: domain.to_owned(),
                campaign_key: campaign_key.to_owned(),
                samples: Vec::new(),
                last_attempt: None,
            });
    }

    /// Runs one day of sampling: stores due for their weekly sample get a
    /// test order, subject to the per-campaign daily cap.
    pub fn sample_day(&mut self, web: &mut impl Web, day: SimDate) {
        self.sample_day_metered(web, day, &ss_obs::Registry::new());
    }

    /// [`sample_day`](Self::sample_day), recording `orders.*` counters
    /// (attempts, cap deferrals, dead stores, successful samples and the
    /// order-number deltas they resolve) into `obs`.
    pub fn sample_day_metered(&mut self, web: &mut impl Web, day: SimDate, obs: &ss_obs::Registry) {
        let mut per_campaign: HashMap<String, usize> = HashMap::new();
        let mut domains: Vec<String> = self.stores.keys().cloned().collect();
        domains.sort(); // deterministic order
        for domain in domains {
            let store = self.stores.get_mut(&domain).expect("key from map");
            let due = match store.last_attempt {
                None => true,
                Some(last) => day.days_since(last) >= i64::from(self.cfg.interval_days),
            };
            if !due {
                continue;
            }
            let used = per_campaign.entry(store.campaign_key.clone()).or_insert(0);
            if *used >= self.cfg.per_campaign_per_day {
                ss_obs::count!(obs, "orders.cap_deferrals");
                continue; // retry next day; last_attempt stays put
            }
            store.last_attempt = Some(day);
            *used += 1;
            ss_obs::count!(obs, "orders.sample_attempts");
            let Ok(host) = ss_types::DomainName::parse(&domain) else {
                continue;
            };
            let url = Url::new(host, "/checkout", "");
            // Orders are placed via TOR in the study; a plain browser
            // request models that (no referrer, fresh identity). Test
            // orders are real orders, so their effects are committed.
            let resp = web.fetch_apply(&Request {
                url,
                user_agent: UserAgent::Browser,
                referrer: None,
            });
            if resp.status != 200 {
                ss_obs::count!(obs, "orders.dead_stores");
                continue; // store dead or seized
            }
            if let Some(n) = extract_order_number(&resp.body) {
                if let Some(prev) = store.samples.last() {
                    ss_obs::count!(obs, "orders.pair_resolutions");
                    ss_obs::observe!(
                        obs,
                        "orders.pair_delta",
                        n.saturating_sub(prev.order_number)
                    );
                }
                ss_obs::count!(obs, "orders.samples");
                store.samples.push(OrderSample {
                    day,
                    order_number: n,
                });
                self.orders_created += 1;
            }
        }
    }

    /// Cumulative order-number series for a store (the "Volume" rows of
    /// Figure 4), zeroed at the first sample.
    pub fn volume_series(&self, domain: &str, start: SimDate, end: SimDate) -> Option<DailySeries> {
        let store = self.stores.get(domain)?;
        let first = store.samples.first()?.order_number;
        let mut s = DailySeries::new(start, end);
        for sample in &store.samples {
            s.set(
                sample.day,
                (sample.order_number - first.min(sample.order_number)) as f64,
            );
        }
        Some(s)
    }

    /// Estimated daily order rate for a store (the "Rate" rows of
    /// Figure 4): deltas spread uniformly across their interval, then
    /// interpolated. Values upper-bound true customer orders (§4.3.1), and
    /// include our own test order (subtracted here: 1 per delta).
    pub fn rate_series(&self, domain: &str, start: SimDate, end: SimDate) -> Option<DailySeries> {
        let _exists = self.stores.get(domain)?;
        let mut s = DailySeries::new(start, end);
        for (from, to, delta) in self.volume_series(domain, start, end)?.sample_deltas() {
            let span = to.days_since(from).max(1) as f64;
            let rate = (delta - 1.0).max(0.0) / span;
            for d in SimDate::range_inclusive(from, to) {
                s.set(d, rate);
            }
        }
        Some(s.interpolated())
    }

    /// Number of distinct stores with at least one successful sample.
    pub fn stores_sampled(&self) -> usize {
        self.stores
            .values()
            .filter(|s| !s.samples.is_empty())
            .count()
    }
}

/// Pulls the order number out of a checkout page.
pub fn extract_order_number(body: &str) -> Option<u64> {
    let doc = Document::parse(body);
    doc.by_id("order-no")?.text_content().trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_web::http::Response;

    /// A toy store whose order counter grows by a fixed amount per day.
    struct ToyStores {
        day: SimDate,
        counters: HashMap<String, u64>,
        daily_growth: u64,
    }

    impl ToyStores {
        fn new(domains: &[&str]) -> Self {
            ToyStores {
                day: SimDate::from_day_index(0),
                counters: domains.iter().map(|d| ((*d).to_owned(), 1000)).collect(),
                daily_growth: 10,
            }
        }
        fn advance(&mut self, to: SimDate) {
            let days = to.days_since(self.day).max(0) as u64;
            for c in self.counters.values_mut() {
                *c += days * self.daily_growth;
            }
            self.day = to;
        }
    }

    impl ss_web::Fetcher for ToyStores {
        fn fetch(&self, req: &Request) -> (Response, Vec<ss_web::SideEffect>) {
            let Some(c) = self.counters.get(req.url.host.as_str()) else {
                return (Response::not_found(), Vec::new());
            };
            let shown = c + 1;
            (
                Response::ok(format!("<p>Order <b id=\"order-no\">{shown}</b></p>")),
                vec![ss_web::SideEffect::OrderAllocated {
                    host: req.url.host.clone(),
                }],
            )
        }
    }
    impl Web for ToyStores {
        fn apply(&mut self, effects: Vec<ss_web::SideEffect>) {
            for ss_web::SideEffect::OrderAllocated { host } in effects {
                if let Some(c) = self.counters.get_mut(host.as_str()) {
                    *c += 1;
                }
            }
        }
    }

    fn day(n: u32) -> SimDate {
        SimDate::from_day_index(n)
    }

    #[test]
    fn weekly_sampling_reconstructs_rate() {
        let mut web = ToyStores::new(&["s1.com"]);
        let mut sampler = OrderSampler::new(SamplerConfig::default());
        sampler.monitor("s1.com", "CAMP");
        for d in 0..29 {
            web.advance(day(d));
            sampler.sample_day(&mut web, day(d));
        }
        let store = &sampler.stores["s1.com"];
        assert_eq!(store.samples.len(), 5); // days 0, 7, 14, 21, 28
        let rate = sampler.rate_series("s1.com", day(0), day(28)).unwrap();
        // True customer growth is 10/day; our own weekly order is excluded.
        let v = rate.get(day(10)).unwrap();
        assert!((v - 10.0).abs() < 1.0, "estimated rate {v}");
    }

    #[test]
    fn volume_series_is_cumulative_from_first_sample() {
        let mut web = ToyStores::new(&["s1.com"]);
        let mut sampler = OrderSampler::new(SamplerConfig::default());
        sampler.monitor("s1.com", "CAMP");
        for d in [0, 7, 14] {
            web.advance(day(d));
            sampler.sample_day(&mut web, day(d));
        }
        let vol = sampler.volume_series("s1.com", day(0), day(14)).unwrap();
        assert_eq!(vol.get(day(0)), Some(0.0));
        let v14 = vol.get(day(14)).unwrap();
        assert!(v14 > 0.0);
    }

    #[test]
    fn per_campaign_cap_limits_daily_orders() {
        let domains = ["a.com", "b.com", "c.com", "d.com", "e.com"];
        let mut web = ToyStores::new(&domains);
        let mut sampler = OrderSampler::new(SamplerConfig::default());
        for d in &domains {
            sampler.monitor(d, "SAME-CAMPAIGN");
        }
        sampler.sample_day(&mut web, day(0));
        let sampled_day0: usize = sampler
            .stores
            .values()
            .filter(|s| !s.samples.is_empty())
            .count();
        assert_eq!(sampled_day0, 3, "cap of 3 per campaign per day");
        // The deferred stores get their turn the next day.
        sampler.sample_day(&mut web, day(1));
        assert_eq!(sampler.stores_sampled(), 5);
    }

    #[test]
    fn dead_stores_yield_no_samples() {
        let mut web = ToyStores::new(&["alive.com"]);
        let mut sampler = OrderSampler::new(SamplerConfig::default());
        sampler.monitor("gone.com", "X");
        sampler.sample_day(&mut web, day(0));
        assert_eq!(sampler.stores_sampled(), 0);
        assert_eq!(sampler.orders_created, 0);
    }

    #[test]
    fn order_number_extraction() {
        assert_eq!(extract_order_number("<b id=\"order-no\">42</b>"), Some(42));
        assert_eq!(extract_order_number("<b id=\"other\">42</b>"), None);
        assert_eq!(extract_order_number("<b id=\"order-no\">nope</b>"), None);
    }

    #[test]
    fn sample_day_metered_counts_attempts_and_resolutions() {
        let mut web = ToyStores::new(&["s1.com"]);
        let mut sampler = OrderSampler::new(SamplerConfig::default());
        sampler.monitor("s1.com", "CAMP");
        sampler.monitor("gone.com", "CAMP");
        let obs = ss_obs::Registry::new();
        for d in [0, 7] {
            web.advance(day(d));
            sampler.sample_day_metered(&mut web, day(d), &obs);
        }
        assert_eq!(obs.counter("orders.sample_attempts"), 4);
        assert_eq!(obs.counter("orders.dead_stores"), 2);
        assert_eq!(obs.counter("orders.samples"), 2);
        // Only the second s1.com sample closes a purchase pair.
        assert_eq!(obs.counter("orders.pair_resolutions"), 1);
        assert_eq!(obs.histogram("orders.pair_delta").unwrap().count(), 1);
    }

    /// Builds a sampler holding exactly the given `(day, order_number)`
    /// samples for one store, bypassing the web.
    fn sampler_with_samples(samples: &[(u32, u64)]) -> OrderSampler {
        let mut sampler = OrderSampler::new(SamplerConfig::default());
        sampler.monitor("s1.com", "CAMP");
        let store = sampler.stores.get_mut("s1.com").expect("monitored");
        for (d, n) in samples {
            store.samples.push(OrderSample {
                day: day(*d),
                order_number: *n,
            });
        }
        sampler
    }

    proptest::proptest! {
        /// The purchase-pair order estimate is monotone in the order-number
        /// deltas: inflating any sample-to-sample delta (more orders placed
        /// between the same two visits) never lowers the estimated rate on
        /// any day, and strictly raises the total estimate.
        #[test]
        fn order_estimate_is_monotone_in_deltas(
            deltas in proptest::collection::vec(0u64..500, 2..8),
            bump_at in 0usize..7,
            // ≥ 2 so the strictness claim survives the 1-test-order
            // subtraction even when the base delta was 0.
            bump in 2u64..300,
        ) {
            let bump_at = bump_at % deltas.len();
            let mut number = 1_000u64;
            let mut base: Vec<(u32, u64)> = vec![(0, number)];
            let mut bumped: Vec<(u32, u64)> = vec![(0, number)];
            let mut bumped_number = number;
            for (i, d) in deltas.iter().enumerate() {
                number += d;
                bumped_number += d + if i == bump_at { bump } else { 0 };
                let sample_day = (i as u32 + 1) * 7;
                base.push((sample_day, number));
                bumped.push((sample_day, bumped_number));
            }
            let last_day = day((deltas.len() as u32) * 7);
            let a = sampler_with_samples(&base);
            let b = sampler_with_samples(&bumped);
            let ra = a.rate_series("s1.com", day(0), last_day).unwrap();
            let rb = b.rate_series("s1.com", day(0), last_day).unwrap();
            let (mut total_a, mut total_b) = (0.0f64, 0.0f64);
            for d in SimDate::range_inclusive(day(0), last_day) {
                let (va, vb) = (ra.get(d).unwrap_or(0.0), rb.get(d).unwrap_or(0.0));
                assert!(vb >= va - 1e-9, "day {d}: rate dropped {va} -> {vb}");
                total_a += va;
                total_b += vb;
            }
            assert!(total_b > total_a, "total estimate must strictly rise");
            // The volume endpoint mirrors the same monotonicity exactly.
            let va = a.volume_series("s1.com", day(0), last_day).unwrap();
            let vb = b.volume_series("s1.com", day(0), last_day).unwrap();
            assert_eq!(
                vb.get(last_day).unwrap() - va.get(last_day).unwrap(),
                bump as f64
            );
        }
    }
}

//! Scraping the supplier's shipping records (§4.5).
//!
//! The portal shows a scrolling list of recent orders plus a bulk lookup
//! taking 20 order numbers per query. The scraper reads the recent list to
//! find the high end of the order-number space, then walks backwards in
//! 20-number chunks until lookups run dry, reconstructing the ledger —
//! the paper collected 279K records this way over nine months of orders.

use std::collections::HashMap;

use ss_types::{SimDate, Url};
use ss_web::http::{Fetcher, Request, UserAgent};
use ss_web::pagegen::supplier::{parse_records, ShipRecord, ShipStatus};
use ss_web::Document;

/// The scraped ledger with aggregates.
#[derive(Debug, Clone)]
pub struct SupplierDataset {
    /// All recovered records, ascending by order number.
    pub records: Vec<ShipRecord>,
    /// Lookup queries issued.
    pub queries: usize,
}

impl SupplierDataset {
    /// Counts per delivery status.
    pub fn status_counts(&self) -> HashMap<ShipStatus, usize> {
        let mut out = HashMap::new();
        for r in &self.records {
            *out.entry(r.status).or_insert(0) += 1;
        }
        out
    }

    /// Counts per destination country, descending.
    pub fn country_counts(&self) -> Vec<(String, usize)> {
        let mut map: HashMap<&str, usize> = HashMap::new();
        for r in &self.records {
            *map.entry(r.country.as_str()).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> =
            map.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Share of records whose destination is in `countries`.
    pub fn share_of(&self, countries: &[&str]) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hit = self
            .records
            .iter()
            .filter(|r| countries.contains(&r.country.as_str()))
            .count();
        hit as f64 / self.records.len() as f64
    }

    /// Records dated within `[from, to]`.
    pub fn in_window(&self, from: SimDate, to: SimDate) -> usize {
        self.records
            .iter()
            .filter(|r| r.date >= from && r.date <= to)
            .count()
    }
}

/// Reads the portal's recent list to find the highest visible order number.
pub fn probe_max_order(web: &impl Fetcher, portal: &str) -> Option<u64> {
    let host = ss_types::DomainName::parse(portal).ok()?;
    let (resp, _) = web.fetch(&Request {
        url: Url::root(host),
        user_agent: UserAgent::Browser,
        referrer: None,
    });
    if resp.status != 200 {
        return None;
    }
    parse_records(&resp.body)
        .into_iter()
        .map(|r| r.order_no)
        .max()
}

/// Walks the order-number space backwards from `max_order`, 20 ids per
/// lookup, stopping after `dry_limit` consecutive all-missing chunks.
pub fn scrape(
    web: &impl Fetcher,
    portal: &str,
    max_order: u64,
    dry_limit: usize,
) -> SupplierDataset {
    let mut records = Vec::new();
    let mut queries = 0usize;
    let mut dry = 0usize;
    let mut hi = max_order + 1;
    let Ok(host) = ss_types::DomainName::parse(portal) else {
        return SupplierDataset { records, queries };
    };
    while dry < dry_limit && hi > 0 {
        let lo = hi.saturating_sub(20);
        let ids: Vec<String> = (lo..hi).map(|o| o.to_string()).collect();
        let url = Url::new(host.clone(), "/track", &format!("orders={}", ids.join(",")));
        let (resp, _) = web.fetch(&Request {
            url,
            user_agent: UserAgent::Browser,
            referrer: None,
        });
        queries += 1;
        let found = if resp.status == 200 {
            parse_records(&resp.body)
        } else {
            Vec::new()
        };
        // The page also reports misses; an all-missing chunk counts as dry.
        let missing = Document::parse(&resp.body)
            .find_all("li")
            .into_iter()
            .filter(|li| li.attr("class") == Some("missing"))
            .count();
        if found.is_empty() && missing >= (hi - lo) as usize {
            dry += 1;
        } else if !found.is_empty() {
            dry = 0;
        }
        records.extend(found);
        hi = lo;
    }
    records.sort_by_key(|r| r.order_no);
    records.dedup_by_key(|r| r.order_no);
    SupplierDataset { records, queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_eco::{ScenarioConfig, World};
    use ss_types::StoreId;

    fn world_with_supplier() -> (World, String) {
        let mut w = World::build(ScenarioConfig::tiny(41)).unwrap();
        // Hand-feed a burst of fulfillments so the ledger is non-trivial
        // even before traffic warms up.
        w.supplier
            .fulfill(StoreId(0), SimDate::from_day_index(10), 137);
        let portal = w.domains.get(w.supplier_domain).name.as_str().to_owned();
        (w, portal)
    }

    #[test]
    fn scrape_recovers_the_full_ledger() {
        let (w, portal) = world_with_supplier();
        let truth = w.supplier.records.len();
        let max = probe_max_order(&w, &portal).unwrap();
        let ds = scrape(&w, &portal, max, 3);
        assert_eq!(ds.records.len(), truth, "scrape missed records");
        assert!(ds.queries >= truth / 20);
        // Ascending and unique.
        for pair in ds.records.windows(2) {
            assert!(pair[0].order_no < pair[1].order_no);
        }
    }

    #[test]
    fn aggregates_compute() {
        let (w, portal) = world_with_supplier();
        let max = probe_max_order(&w, &portal).unwrap();
        let ds = scrape(&w, &portal, max, 3);
        let status = ds.status_counts();
        assert_eq!(status.values().sum::<usize>(), ds.records.len());
        let countries = ds.country_counts();
        assert!(!countries.is_empty());
        let share = ds.share_of(&[
            "United States",
            "Japan",
            "Australia",
            "United Kingdom",
            "Germany",
            "France",
            "Italy",
        ]);
        assert!(share > 0.5, "top-market share {share}");
    }

    #[test]
    fn scrape_handles_missing_portal() {
        let w = World::build(ScenarioConfig::tiny(43)).unwrap();
        assert_eq!(probe_max_order(&w, "not-the-portal.com"), None);
        let ds = scrape(&w, "not-the-portal.com", 100, 2);
        assert!(ds.records.is_empty());
    }
}

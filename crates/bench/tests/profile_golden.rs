//! Golden snapshot of the deterministic cost profile.
//!
//! The cost-model profiler's contract is that its deterministic columns
//! (phase enters, allocations, bytes, frees, and typed work units) are a
//! pure function of the scenario — independent of thread count, wall
//! clock, and machine. These tests pin that contract two ways:
//!
//! * a fast, always-on thread matrix: the tiny-preset cost profile must
//!   be byte-identical at 1, 2, and 8 threads and across repeat runs;
//! * a release-only golden (`tests/golden/costs_small.json`): the
//!   small-preset profile must reproduce the checked-in snapshot byte
//!   for byte. Regenerate after an intentional behaviour change with
//!
//!   ```text
//!   UPDATE_GOLDEN=1 cargo test --release -p ss-bench \
//!       --test profile_golden -- --include-ignored
//!   ```
//!
//! Wall-clock columns (`total_ms`/`self_ms`) live in a separate
//! projection ([`ss_obs::Registry::cost_timings_value`]) and are never
//! golden-gated — see DESIGN.md §5b.

use ss_bench::Preset;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/costs_small.json");
const GOLDEN_SEED: u64 = 101;

/// Runs a preset study and returns the deterministic cost projection.
fn costs_at(preset: Preset, threads: usize) -> String {
    let mut cfg = preset.config(GOLDEN_SEED);
    cfg.set_threads(threads);
    cfg.manifest_path = None;
    let out = search_seizure::Study::new(cfg).run().expect("study runs");
    out.metrics.costs_json() + "\n"
}

#[test]
fn tiny_cost_profile_is_bit_identical_across_thread_counts() {
    let serial = costs_at(Preset::Tiny, 1);
    // Phases from every instrumented plane are present.
    for phase in ["crawl/fetch", "tick/juice", "analysis/scan", "engine/serp"] {
        assert!(serial.contains(phase), "profile records {phase}:\n{serial}");
    }
    for threads in [2usize, 8] {
        assert_eq!(
            serial,
            costs_at(Preset::Tiny, threads),
            "cost profile diverged at {threads} threads"
        );
    }
    // Repeat run, same shape: the profile is also time-independent.
    assert_eq!(
        serial,
        costs_at(Preset::Tiny, 1),
        "profile drifted across repeat runs"
    );
}

/// Heavy: the small preset runs a multi-month crawl. Ignored in the
/// default (debug) test pass; CI's release perf job runs it with
/// `--include-ignored`.
#[test]
#[ignore = "release-scale golden; run with --release -- --include-ignored"]
fn small_cost_profile_matches_golden_snapshot() {
    let rendered = costs_at(Preset::Small, 4);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("golden cost profile regenerated at {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden file {GOLDEN_PATH} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --release -p ss-bench \
             --test profile_golden -- --include-ignored"
        )
    });
    if rendered != golden {
        let diff_line = rendered
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: {a:?} vs golden {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "documents diverge in length: {} vs golden {} lines",
                    rendered.lines().count(),
                    golden.lines().count()
                )
            });
        panic!(
            "deterministic cost profile drifted from the golden snapshot \
             ({diff_line}). If the cost change is intentional, regenerate \
             with UPDATE_GOLDEN=1 cargo test --release -p ss-bench \
             --test profile_golden -- --include-ignored and commit the new \
             {GOLDEN_PATH}."
        );
    }
}

//! Criterion benchmarks of the measurement-pipeline stages: Dagger checks,
//! VanGogh renders, a full crawl day, and purchase-pair estimation — the
//! costs that scale with crawl size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use search_seizure::analysis::scan::StudyScan;
use search_seizure::{Study, StudyConfig};
use ss_crawl::crawler::{Crawler, CrawlerConfig};
use ss_crawl::{dagger, terms, vangogh};
use ss_eco::{ScenarioConfig, World};
use ss_obs::Registry;
use ss_orders::purchasepair::{OrderSampler, SamplerConfig};
use ss_types::{SimDate, Url};

/// A warmed world plus a live doorway URL and term to probe.
fn probe_setup() -> (World, Url, String) {
    let mut w = World::build(ScenarioConfig::tiny(5)).expect("world");
    let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 5);
    w.run_until(start);
    let day = w.day;
    let d = w
        .campaigns
        .iter()
        .flat_map(|c| c.doorways.iter())
        .find(|d| d.is_live(day))
        .expect("a live doorway");
    let term = w.term_text(d.terms[0]).to_owned();
    let url = Url::root(w.domains.get(d.domain).name.clone());
    (w, url, term)
}

fn bench_detectors(c: &mut Criterion) {
    let (w, url, term) = probe_setup();
    c.bench_function("crawl/dagger_check", |b| {
        b.iter(|| dagger::check(&w, &url, &term, 6))
    });
    c.bench_function("crawl/vangogh_render_check", |b| {
        b.iter(|| vangogh::check(&w, &url, &term, 6))
    });
}

fn bench_crawl_day(c: &mut Criterion) {
    c.bench_function("crawl/full_day_tiny", |b| {
        b.iter_batched(
            || {
                let mut w = World::build(ScenarioConfig::tiny(7)).expect("world");
                let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
                w.run_until(start + 1);
                let monitored = terms::select_all(&w, start, 6, 5);
                let crawler = Crawler::new(
                    CrawlerConfig {
                        serp_depth: 30,
                        ..CrawlerConfig::default()
                    },
                    monitored,
                );
                (w, crawler)
            },
            |(w, mut crawler)| {
                let day = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 1);
                crawler.crawl_day(&w, day);
                crawler.db.psrs.len()
            },
            BatchSize::LargeInput,
        )
    });
}

/// Serial vs. parallel crawl of one day at `Scale::small`: same world, same
/// verticals, only `CrawlerConfig::threads` differs. The crawl phase reads
/// a frozen `&World`, so the (expensive) world build happens once and each
/// iteration only rebuilds the cheap crawler state.
fn bench_crawl_day_scaling(c: &mut Criterion) {
    let mut w = World::build(ScenarioConfig::small(13)).expect("world");
    let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
    w.run_until(start + 1);
    let day = start + 1;
    let monitored = terms::select_all(&w, start, 8, 5);
    for (name, threads) in [
        ("crawl/full_day_small_serial", 1usize),
        ("crawl/full_day_small_4threads", 4),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || {
                    Crawler::new(
                        CrawlerConfig {
                            serp_depth: 30,
                            threads,
                            ..CrawlerConfig::default()
                        },
                        monitored.clone(),
                    )
                },
                |mut crawler| {
                    crawler.crawl_day(&w, day);
                    // Benches run with tracing disabled; the recorder
                    // must stay empty or the "zero overhead off" claim
                    // (and the ≤2% regression budget) is broken.
                    assert!(crawler.recorder.is_empty());
                    crawler.db.psrs.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
}

fn bench_world_tick(c: &mut Criterion) {
    let mut w = World::build(ScenarioConfig::small(9)).expect("world");
    w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY));
    c.bench_function("eco/world_tick_small", |b| b.iter(|| w.tick()));
}

/// Serial vs. parallel simulation of one full day at `Scale::small`: the
/// same warmed world, only `tick_threads` differs. Stage planners fan out
/// over verticals/store shards; `apply_plan` replays sequentially either
/// way, so the committed state is bit-identical — only wall-clock moves.
fn bench_tick_scaling(c: &mut Criterion) {
    for (name, threads) in [
        ("tick/full_day_small_serial", 1usize),
        ("tick/full_day_small_4threads", 4),
    ] {
        let mut w = World::build(ScenarioConfig::small(13)).expect("world");
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY));
        w.tick_threads = threads;
        c.bench_function(name, |b| b.iter(|| w.tick()));
        // Tracing is off by default: the flight recorder and the
        // persisted event trail must both stay empty during benches.
        assert!(!w.recorder.enabled() && w.recorder.is_empty() && w.event_trail.is_empty());
    }
}

/// Nested-struct vs component-table scan over the traffic planner's hot
/// path: the per-store eligibility filter (retired / not-yet-created /
/// seized) plus the per-store arithmetic. The nested baseline is the
/// pre-refactor layout, rebuilt via `materialize`; the table side reads
/// raw columns, the access discipline `plan.rs` planners use.
fn bench_entity_scan(c: &mut Criterion) {
    let mut w = World::build(ScenarioConfig::small(17)).expect("world");
    w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 10));
    let day = w.day;
    // Replicate the run's store fleet to paper-like counts (tens of
    // thousands of stores) so the scan leaves cache and the layouts'
    // memory traffic actually differs; a small world fits in L2 whole.
    let mut nested: Vec<ss_eco::store::StoreState> = Vec::new();
    let mut table = ss_eco::StoreTable::default();
    for rep in 0..200 {
        for i in 0..w.stores.len() {
            let mut s = w.stores.materialize(ss_types::StoreId::from_index(i));
            s.id = ss_types::StoreId::from_index(rep * w.stores.len() + i);
            table.push(s.clone());
            nested.push(s);
        }
    }

    c.bench_function("tick/traffic_scan_nested", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for s in &nested {
                if s.retired || s.created > day {
                    continue;
                }
                if w.domains.seizure_of(s.current_domain).is_some() {
                    continue;
                }
                acc += s.order_counter;
            }
            acc
        })
    });
    c.bench_function("tick/traffic_scan_table", |b| {
        let (retired, created) = (table.retired_col(), table.created_col());
        let (domains, counters) = (table.current_domain_col(), table.order_counter_col());
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..retired.len() {
                if retired[i] || created[i] > day {
                    continue;
                }
                if w.domains.seizure_of(domains[i]).is_some() {
                    continue;
                }
                acc += counters[i];
            }
            acc
        })
    });
}

fn bench_purchase_pair(c: &mut Criterion) {
    let mut w = World::build(ScenarioConfig::tiny(11)).expect("world");
    let start = SimDate::from_day_index(ss_types::CRAWL_START_DAY);
    w.run_until(start + 1);
    let mut sampler = OrderSampler::new(SamplerConfig::default());
    let domains: Vec<String> = w
        .stores
        .iter()
        .filter(|s| !s.retired)
        .take(20)
        .map(|s| w.domains.get(s.current_domain).name.as_str().to_owned())
        .collect();
    for d in &domains {
        sampler.monitor(d, d);
    }
    // Collect a few weeks of samples to make estimation non-trivial.
    for k in 0..5u32 {
        let day = start + 1 + k * 7;
        w.run_until(day);
        sampler.sample_day(&mut w, day);
    }
    let end = start + 29;
    c.bench_function("orders/rate_estimation_20stores", |b| {
        b.iter(|| {
            domains
                .iter()
                .filter_map(|d| sampler.rate_series(d, start, end))
                .map(|r| r.sum())
                .sum::<f64>()
        })
    });
}

/// The analysis data plane over a `Scale::small` crawl corpus: one fused
/// pass (serial and sharded) vs. the legacy shape of one pass per
/// analysis module. Same aggregators, same outputs — the delta is pure
/// scan-count and scheduling.
fn bench_analysis_scan(c: &mut Criterion) {
    let mut cfg = StudyConfig::new(ScenarioConfig::small(13));
    cfg.monitored_terms = 8;
    cfg.crawler.serp_depth = 30;
    cfg.crawl_end = cfg.crawl_start + 12;
    cfg.attribution.train.epochs = 120;
    cfg.attribution.refine_rounds = 1;
    cfg.manifest_path = None;
    let out = Study::new(cfg).run().expect("study runs");
    let obs = Registry::new();
    c.bench_function("analysis/one_pass_small", |b| {
        b.iter(|| {
            StudyScan::compute(
                &out.crawler.db,
                &out.attribution,
                out.monitored.len(),
                out.window,
                1,
                &obs,
            )
        })
    });
    c.bench_function("analysis/one_pass_small_4threads", |b| {
        b.iter(|| {
            StudyScan::compute(
                &out.crawler.db,
                &out.attribution,
                out.monitored.len(),
                out.window,
                4,
                &obs,
            )
        })
    });
    c.bench_function("analysis/per_module_small", |b| {
        b.iter(|| {
            StudyScan::compute_per_module(
                &out.crawler.db,
                &out.attribution,
                out.monitored.len(),
                out.window,
                &obs,
            )
        })
    });
}

criterion_group! {
    name = benches;
    // World builds and crawl days are hundreds of ms each; a small sample
    // budget keeps `cargo bench` wall time reasonable.
    config = Criterion::default().sample_size(10);
    targets = bench_detectors, bench_crawl_day, bench_crawl_day_scaling, bench_world_tick, bench_tick_scaling, bench_entity_scan, bench_purchase_pair, bench_analysis_scan
}
criterion_main!(benches);

//! Criterion microbenchmarks of the substrate layers: HTML parsing, JS
//! rendering, SERP generation, feature extraction, classifier training.
//! These are the per-page costs the paper's workload-trimming decisions
//! (churn caching, ≤3 renders per domain) were designed around.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ss_bench::jsengine;
use ss_eco::{ScenarioConfig, World};
use ss_ml::logreg::{MulticlassModel, TrainConfig};
use ss_ml::{extract_features, Dictionary};
use ss_types::rng::sub_rng;
use ss_types::{SimDate, TermId};
use ss_web::http::UserAgent;
use ss_web::js::render::render;
use ss_web::js::{JsCache, JsEngine};
use ss_web::pagegen::storefront::{home_page, StoreCtx, StoreTemplate};
use ss_web::pagegen::{doorway, obfuscate};
use ss_web::Document;

fn sample_store_page() -> String {
    let t = StoreTemplate::for_campaign("BIGLOVE", 42);
    home_page(&StoreCtx {
        domain: "cocovipbags.com",
        store_name: "coco vip bags",
        template: &t,
        brands: &["Chanel", "Louis Vuitton"],
        locale: "us",
        merchant_id: "m-889231",
        seed: 7,
    })
}

fn sample_iframe_page(level: u8) -> String {
    let ctx = doorway::DoorwayCtx {
        domain: "hacked-blog.com",
        term: "cheap louis vuitton",
        brand: "Louis Vuitton",
        backlinks: &[],
        seed: 11,
    };
    doorway::iframe_page(&ctx, "http://store.com/", level)
}

fn bench_html(c: &mut Criterion) {
    let page = sample_store_page();
    c.bench_function("html/parse_store_page", |b| {
        b.iter(|| Document::parse(std::hint::black_box(&page)))
    });
    let doc = Document::parse(&page);
    c.bench_function("html/text_extraction", |b| b.iter(|| doc.text_content()));
}

fn bench_js(c: &mut Criterion) {
    for level in [1u8, 2, 3] {
        let page = sample_iframe_page(level);
        c.bench_function(&format!("js/render_iframe_obf{level}"), |b| {
            b.iter(|| {
                render(
                    std::hint::black_box(&page),
                    "http://d.com/",
                    UserAgent::Browser,
                    None,
                )
            })
        });
    }
    let mut rng = sub_rng(1, "bench");
    c.bench_function("js/payload_generation_obf3", |b| {
        b.iter(|| obfuscate::iframe_payload("http://store.com/", 3, &mut rng))
    });
}

/// Head-to-head over the shared pagegen corpus: the tree-walking
/// reference vs the bytecode VM on a warmed chunk cache (the crawler's
/// steady state — every page template compiles once per run). The ≥2× VM
/// speedup recorded in EXPERIMENTS.md comes from this pair; `js_bench`
/// gates CI on the same corpus.
fn bench_js_engines(c: &mut Criterion) {
    let corpus = jsengine::render_corpus();
    let tw_cache = JsCache::new();
    c.bench_function("js/render_treewalk", |b| {
        b.iter(|| jsengine::sweep(&corpus, JsEngine::TreeWalk, &tw_cache))
    });
    let vm_cache = JsCache::new();
    jsengine::sweep(&corpus, JsEngine::Vm, &vm_cache); // warm the chunk cache
    c.bench_function("js/render_vm", |b| {
        b.iter(|| jsengine::sweep(&corpus, JsEngine::Vm, &vm_cache))
    });
}

fn bench_serp(c: &mut Criterion) {
    let world = World::build(ScenarioConfig::small(5)).expect("world");
    let day = SimDate::from_day_index(ss_types::CRAWL_START_DAY + 10);
    c.bench_function("search/serp_top100", |b| {
        b.iter(|| world.engine.serp(TermId(0), day, 100))
    });
    // The query-plane pair EXPERIMENTS.md quotes: the reference
    // scan-and-sort over every posting vs the epoch's bounded walk down
    // score-sorted postings, plus the (term, day)-cached steady state the
    // crawler and `repro serve` actually hit.
    c.bench_function("serp/full_scan", |b| {
        b.iter(|| world.engine.serp_full_scan(TermId(0), day, 100))
    });
    let epoch = world.engine.epoch();
    c.bench_function("serp/epoch_walk", |b| {
        b.iter(|| epoch.ranked_uncached(TermId(0), day, 100))
    });
    c.bench_function("serp/epoch_cached", |b| {
        b.iter(|| epoch.ranked(TermId(0), day, 100))
    });
    c.bench_function("eco/world_build_tiny", |b| {
        b.iter(|| World::build(ScenarioConfig::tiny(9)).expect("world"))
    });
}

fn bench_ml(c: &mut Criterion) {
    let page = sample_store_page();
    c.bench_function("ml/feature_extraction", |b| {
        b.iter_batched(
            Dictionary::new,
            |mut dict| extract_features(std::hint::black_box(&page), &mut dict, true),
            BatchSize::SmallInput,
        )
    });

    // A small multiclass training problem shaped like the real one.
    let mut dict = Dictionary::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for class in 0..8 {
        let t = StoreTemplate::for_campaign(&format!("C{class}"), 42);
        for seed in 0..6 {
            let html = home_page(&StoreCtx {
                domain: "x.com",
                store_name: "x",
                template: &t,
                brands: &["Chanel"],
                locale: "us",
                merchant_id: "m",
                seed,
            });
            xs.push(extract_features(&html, &mut dict, true));
            ys.push(class);
        }
    }
    let names: Vec<String> = (0..8).map(|c| format!("C{c}")).collect();
    let cfg = TrainConfig {
        epochs: 60,
        ..TrainConfig::default()
    };
    c.bench_function("ml/train_8class_48docs", |b| {
        b.iter(|| MulticlassModel::train(&xs, &ys, names.clone(), dict.len(), &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_html, bench_js, bench_js_engines, bench_serp, bench_ml
}
criterion_main!(benches);

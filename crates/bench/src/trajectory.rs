//! The perf trajectory: an append-only log of profiled runs and the
//! regression gate over it.
//!
//! `paper_smoke` appends one entry per run to `BENCH_paper.json`; the
//! file is a versioned envelope `{"schema_version": 2, "runs": [...]}`.
//! Files written before the envelope existed (one bare profile object)
//! migrate on load: the object becomes `runs[0]`.
//!
//! `repro bench-report <base> <current>` compares the **latest** run of
//! two logs. Deterministic cost metrics — phase costs, work units, the
//! compile/query counters, headline observables — are gated: an increase
//! beyond the metric's tolerance (default 2%) is a regression and, with
//! `--deny`, a non-zero exit. Wall-clock metrics (`*_wall_s`, qps,
//! checkpoint timings) are reported for context but never gated — the
//! machine's speed is not part of the contract.

use serde::Value;

/// Current envelope schema version.
pub const SCHEMA_VERSION: u64 = 2;

/// Default relative tolerance for gated metrics.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// Per-metric tolerance overrides, matched by longest prefix. Work-unit
/// and allocation totals jitter zero across identical builds, but byte
/// totals shift slightly with allocator-visible layout changes, so they
/// get a little more headroom.
const TOLERANCES: &[(&str, f64)] = &[("costs.", 0.02), ("costs_bytes.", 0.05)];

/// Metric name prefixes that are wall-clock: reported, never gated.
const WALL_PREFIXES: &[&str] = &[
    "build_wall_s",
    "total_wall_s",
    "serve_qps",
    "checkpoint_save_s",
    "checkpoint_load_s",
];

fn lookup<'v>(map: &'v Value, key: &str) -> Option<&'v Value> {
    match map {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Normalizes a parsed `BENCH_paper.json` document to the v2 envelope.
/// A bare profile object (the pre-envelope format) becomes a one-run
/// log; an existing envelope passes through with its runs intact.
pub fn normalize_log(doc: Value) -> Value {
    let is_envelope = lookup(&doc, "schema_version").is_some() && lookup(&doc, "runs").is_some();
    let runs = if is_envelope {
        match lookup(&doc, "runs") {
            Some(Value::Seq(rs)) => rs.clone(),
            _ => Vec::new(),
        }
    } else {
        vec![doc]
    };
    Value::Map(vec![
        ("schema_version".into(), Value::UInt(SCHEMA_VERSION)),
        ("runs".into(), Value::Seq(runs)),
    ])
}

/// A fresh v2 envelope with no runs.
pub fn empty_log() -> Value {
    Value::Map(vec![
        ("schema_version".into(), Value::UInt(SCHEMA_VERSION)),
        ("runs".into(), Value::Seq(Vec::new())),
    ])
}

/// Number of run entries in a normalized log.
pub fn run_count(log: &Value) -> usize {
    match lookup(log, "runs") {
        Some(Value::Seq(runs)) => runs.len(),
        _ => 0,
    }
}

/// Appends one run entry to a normalized log (in place).
pub fn append_run(log: &mut Value, run: Value) {
    if let Some(Value::Seq(runs)) = match log {
        Value::Map(m) => m.iter_mut().find(|(k, _)| k == "runs").map(|(_, v)| v),
        _ => None,
    } {
        runs.push(run);
    }
}

/// The latest run entry of a normalized log (or of a bare profile).
pub fn latest_run(log: &Value) -> Option<&Value> {
    match lookup(log, "runs") {
        Some(Value::Seq(runs)) => runs.last(),
        _ => {
            // A bare profile object is its own single run.
            if matches!(log, Value::Map(_)) {
                Some(log)
            } else {
                None
            }
        }
    }
}

/// One metric's comparison between a base and a current run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Flattened metric name (e.g. `headline.psrs`,
    /// `costs.crawl/render.allocs`, `total_wall_s`).
    pub name: String,
    /// Base-side value, `None` when the metric is new.
    pub base: Option<f64>,
    /// Current-side value, `None` when the metric disappeared.
    pub current: Option<f64>,
    /// Relative change `(current - base) / base`; `None` when either
    /// side is missing or the base is zero with a nonzero current.
    pub rel: Option<f64>,
    /// Whether the metric participates in the regression gate.
    pub gated: bool,
    /// The tolerance the gate applied.
    pub tolerance: f64,
    /// Gated, increased beyond tolerance.
    pub regressed: bool,
}

impl std::fmt::Display for MetricDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let side = |v: Option<f64>| v.map(|x| format!("{x}")).unwrap_or_else(|| "—".into());
        write!(
            f,
            "{:<44} {:>14} -> {:>14}",
            self.name,
            side(self.base),
            side(self.current)
        )?;
        if let Some(r) = self.rel {
            write!(f, "  {:+.2}%", r * 100.0)?;
        }
        if self.regressed {
            write!(f, "  REGRESSION (tolerance {:.0}%)", self.tolerance * 100.0)?;
        } else if !self.gated {
            write!(f, "  (wall-clock, not gated)")?;
        }
        Ok(())
    }
}

fn tolerance_for(name: &str) -> f64 {
    TOLERANCES
        .iter()
        .filter(|(prefix, _)| name.starts_with(prefix))
        .max_by_key(|(prefix, _)| prefix.len())
        .map(|(_, t)| *t)
        .unwrap_or(DEFAULT_TOLERANCE)
}

fn is_wall(name: &str) -> bool {
    WALL_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Flattens one run entry into `(name, value)` metric rows: every
/// numeric headline field, the deterministic counters, the per-phase
/// cost columns (`costs.<path>.<column>` with bytes split out under
/// `costs_bytes.` for its wider tolerance), and the wall-clock scalars.
/// Stage timings are skipped entirely — the per-stage wall table has its
/// own manifest section and gates nothing.
pub fn flatten_metrics(run: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut push = |name: String, v: f64| out.push((name, v));
    let Value::Map(fields) = run else {
        return out;
    };
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("stage_timings" | "calibration" | "world" | "crawl_window", _) => {}
            // Run parameters, not measurements: comparing a 2-thread entry
            // against a 4-thread baseline must not gate on the knob itself.
            ("seed" | "threads", _) => {}
            ("headline", Value::Map(h)) => {
                for (hk, hv) in h {
                    if let Some(n) = numeric(hv) {
                        push(format!("headline.{hk}"), n);
                    }
                }
            }
            ("costs", Value::Map(paths)) => {
                for (path, row) in paths {
                    let Value::Map(cols) = row else { continue };
                    for (col, cv) in cols {
                        match (col.as_str(), cv) {
                            ("work", Value::Map(work)) => {
                                for (wk, wv) in work {
                                    if let Some(n) = numeric(wv) {
                                        push(format!("costs.{path}.work.{wk}"), n);
                                    }
                                }
                            }
                            ("bytes", _) => {
                                if let Some(n) = numeric(cv) {
                                    push(format!("costs_bytes.{path}"), n);
                                }
                            }
                            (_, _) => {
                                if let Some(n) = numeric(cv) {
                                    push(format!("costs.{path}.{col}"), n);
                                }
                            }
                        }
                    }
                }
            }
            (_, v) => {
                if let Some(n) = numeric(v) {
                    push(key.clone(), n);
                }
            }
        }
    }
    out
}

/// Compares the latest runs of two logs. Returns every metric present
/// on either side, in base-side order with new metrics appended; the
/// caller decides what to print and whether `regressed` rows are fatal.
pub fn compare(base: &Value, current: &Value) -> Vec<MetricDelta> {
    let flat = |log: &Value| latest_run(log).map(flatten_metrics).unwrap_or_default();
    let b = flat(base);
    let c = flat(current);
    let mut names: Vec<&str> = b.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in &c {
        if !names.contains(&n.as_str()) {
            names.push(n);
        }
    }
    names
        .into_iter()
        .map(|name| {
            let base_v = b.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            let cur_v = c.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            let rel = match (base_v, cur_v) {
                (Some(bv), Some(cv)) if bv != 0.0 => Some((cv - bv) / bv),
                (Some(bv), Some(cv)) if bv == 0.0 && cv == 0.0 => Some(0.0),
                _ => None,
            };
            let gated = !is_wall(name);
            let tolerance = tolerance_for(name);
            let regressed = gated
                && match rel {
                    Some(r) => r > tolerance,
                    // A gated metric appearing from zero (or from
                    // nothing) with a nonzero value is a regression
                    // only for cost rows; new headline fields are
                    // schema growth, not cost growth.
                    None => name.starts_with("costs") && cur_v.unwrap_or(0.0) > 0.0,
                };
            MetricDelta {
                name: name.to_owned(),
                base: base_v,
                current: cur_v,
                rel,
                gated,
                tolerance,
                regressed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest_diff::parse_json;

    fn run(allocs: u64, wall: f64) -> String {
        format!(
            r#"{{
                "preset": "small", "seed": 2014,
                "headline": {{"psrs": 1200, "test_orders": 40}},
                "js_compiles": 62,
                "total_wall_s": {wall},
                "costs": {{
                    "crawl/render": {{"enters": 500, "allocs": {allocs}, "bytes": 4096, "frees": 500,
                                      "work": {{"js_compiles": 62}}}}
                }}
            }}"#
        )
    }

    #[test]
    fn bare_profile_migrates_to_envelope_and_appends() {
        let bare = parse_json(&run(1000, 5.0)).unwrap();
        let mut log = normalize_log(bare);
        match lookup(&log, "schema_version") {
            Some(Value::UInt(v)) => assert_eq!(*v, SCHEMA_VERSION),
            other => panic!("missing schema_version: {other:?}"),
        }
        append_run(&mut log, parse_json(&run(1001, 6.0)).unwrap());
        let Some(Value::Seq(runs)) = lookup(&log, "runs") else {
            panic!("runs missing")
        };
        assert_eq!(runs.len(), 2);
        // latest_run sees the appended entry.
        let latest = latest_run(&log).expect("latest");
        let flat = flatten_metrics(latest);
        assert!(flat.contains(&("costs.crawl/render.allocs".into(), 1001.0)));
        // An already-normalized log round-trips unchanged.
        let renorm = normalize_log(log.clone());
        assert_eq!(renorm, log);
    }

    #[test]
    fn five_percent_cost_regression_is_detected_and_wall_is_not_gated() {
        let base = normalize_log(parse_json(&run(1000, 5.0)).unwrap());
        // +5% allocations, wall clock doubled (machine noise).
        let cur = normalize_log(parse_json(&run(1050, 10.0)).unwrap());
        let deltas = compare(&base, &cur);
        let alloc = deltas
            .iter()
            .find(|d| d.name == "costs.crawl/render.allocs")
            .expect("alloc row");
        assert!(alloc.regressed, "5% > 2% tolerance must gate: {alloc}");
        let wall = deltas
            .iter()
            .find(|d| d.name == "total_wall_s")
            .expect("wall row");
        assert!(!wall.gated && !wall.regressed, "wall is never gated");
        // Identical runs: nothing regresses.
        assert!(compare(&base, &base).iter().all(|d| !d.regressed));
    }

    #[test]
    fn tolerances_allow_small_drift_and_bytes_get_headroom() {
        let base = normalize_log(parse_json(&run(1000, 5.0)).unwrap());
        let cur = normalize_log(parse_json(&run(1010, 5.0)).unwrap());
        // +1% is inside the 2% default.
        assert!(compare(&base, &cur).iter().all(|d| !d.regressed));
        // Bytes use the wider 5% tolerance.
        assert!((tolerance_for("costs_bytes.crawl/render") - 0.05).abs() < 1e-12);
        assert!((tolerance_for("costs.crawl/render.allocs") - 0.02).abs() < 1e-12);
    }

    #[test]
    fn work_units_flatten_per_kind() {
        let flat = flatten_metrics(&parse_json(&run(7, 1.0)).unwrap());
        assert!(flat.contains(&("costs.crawl/render.work.js_compiles".into(), 62.0)));
        assert!(flat.contains(&("headline.psrs".into(), 1200.0)));
        assert!(flat.contains(&("js_compiles".into(), 62.0)));
    }
}

//! Structural diff of run manifests.
//!
//! `repro diff` and the sweep report both need to answer one question:
//! *do two runs describe the same measurement*, ignoring how long the
//! machine took to produce it? This module parses manifest JSON back
//! into the in-tree [`serde::Value`] (the vendored `serde_json` shim is
//! writer-only, so the parser lives here), then walks both trees and
//! reports every path where they disagree — except wall-clock fields:
//!
//! * `stage_timings`, `spans`, and `cost_timings` subtrees (durations),
//!   and
//! * any field named `elapsed_ms`, at any depth.
//!
//! Everything else — headline counts, calibration statuses, per-day
//! deterministic counters, the metric registry — must match for two
//! manifests to be considered equal.

use serde::Value;

/// Map keys whose entire subtree is wall-clock and excluded from diffs.
const WALL_CLOCK_SUBTREES: &[&str] = &["stage_timings", "spans", "cost_timings"];
/// Field names that hold wall-clock scalars wherever they appear.
const WALL_CLOCK_FIELDS: &[&str] = &["elapsed_ms"];

/// One path where the two manifests disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path from the root, e.g. `headline.test_orders` or
    /// `days[3].purchases`.
    pub path: String,
    /// Rendered value on the left side; `None` if the path is absent.
    pub left: Option<String>,
    /// Rendered value on the right side; `None` if the path is absent.
    pub right: Option<String>,
    /// `right - left` when both sides are numeric.
    pub delta: Option<f64>,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let left = self.left.as_deref().unwrap_or("(absent)");
        let right = self.right.as_deref().unwrap_or("(absent)");
        write!(f, "{}: {} -> {}", self.path, left, right)?;
        if let Some(d) = self.delta {
            write!(f, " ({d:+})")?;
        }
        Ok(())
    }
}

/// Diffs two manifest values, ignoring wall-clock fields. Returns an
/// empty vec iff the manifests agree on everything deterministic.
pub fn diff(a: &Value, b: &Value) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    walk("", Some(a), Some(b), &mut out);
    out
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unrenderable>".into())
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn record(path: &str, a: Option<&Value>, b: Option<&Value>, out: &mut Vec<DiffEntry>) {
    let delta = match (a.and_then(numeric), b.and_then(numeric)) {
        (Some(x), Some(y)) => Some(y - x),
        _ => None,
    };
    out.push(DiffEntry {
        path: path.to_string(),
        left: a.map(render),
        right: b.map(render),
        delta,
    });
}

fn lookup<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn walk(path: &str, a: Option<&Value>, b: Option<&Value>, out: &mut Vec<DiffEntry>) {
    match (a, b) {
        (None, None) => {}
        (Some(Value::Map(ma)), Some(Value::Map(mb))) => {
            // Visit keys in left-side order, then right-only keys, so
            // the report reads in manifest order.
            for (k, va) in ma {
                if ignored(k) {
                    continue;
                }
                let sub = join(path, k);
                walk(&sub, Some(va), lookup(mb, k), out);
            }
            for (k, vb) in mb {
                if ignored(k) || lookup(ma, k).is_some() {
                    continue;
                }
                let sub = join(path, k);
                walk(&sub, None, Some(vb), out);
            }
        }
        (Some(Value::Seq(sa)), Some(Value::Seq(sb))) => {
            for i in 0..sa.len().max(sb.len()) {
                let sub = format!("{path}[{i}]");
                walk(&sub, sa.get(i), sb.get(i), out);
            }
        }
        (Some(va), Some(vb)) => {
            if !scalar_eq(va, vb) {
                record(path, Some(va), Some(vb), out);
            }
        }
        (a, b) => record(path, a, b, out),
    }
}

fn ignored(key: &str) -> bool {
    WALL_CLOCK_SUBTREES.contains(&key) || WALL_CLOCK_FIELDS.contains(&key)
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Structural equality on non-container values (containers are recursed
/// into by [`walk`], so a container here means a shape mismatch).
fn scalar_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        // Numbers compare by value across representations: the writer
        // emits `1.0` as Float and `1` as UInt, but they are the same
        // measurement.
        (Value::Int(_) | Value::UInt(_) | Value::Float(_), _)
            if numeric(a).is_some() && numeric(b).is_some() =>
        {
            numeric(a) == numeric(b)
        }
        _ => false,
    }
}

/// One event kind's comparison between two manifests' `event_trail`
/// sections: totals on both sides plus the first day whose (count, hash)
/// row disagrees.
#[derive(Debug, Clone, PartialEq)]
pub struct TrailKindDiff {
    /// Event-kind tag.
    pub kind: String,
    /// Total events of the kind on the left / right side (`None` when
    /// the kind is absent on that side).
    pub left: Option<u64>,
    /// Right-side total.
    pub right: Option<u64>,
    /// First day index where the per-day rows disagree, if any.
    pub first_divergence: Option<u32>,
}

impl std::fmt::Display for TrailKindDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt_side = |s: Option<u64>| s.map(|n| n.to_string()).unwrap_or_else(|| "—".into());
        write!(
            f,
            "{}: {} -> {} events",
            self.kind,
            fmt_side(self.left),
            fmt_side(self.right)
        )?;
        match self.first_divergence {
            Some(day) => write!(f, ", first divergence day {day}"),
            None => write!(f, ", per-day rows agree"),
        }
    }
}

/// Compares the `event_trail` sections of two parsed manifests and
/// reports, per event kind, the totals and the first divergent day.
/// Kinds whose summaries match exactly are omitted; an empty result
/// means the committed event logs agree. Manifests written before the
/// trail section existed compare as empty trails.
pub fn trail_diff(a: &Value, b: &Value) -> Vec<TrailKindDiff> {
    // One side's summary of a kind: (kind, total, per-day (day, count, hash)).
    type KindRows = (String, u64, Vec<(u32, u64, String)>);
    let kinds_of = |v: &Value| -> Vec<KindRows> {
        let Value::Map(root) = v else {
            return Vec::new();
        };
        let Some(Value::Seq(trail)) = lookup(root, "event_trail") else {
            return Vec::new();
        };
        trail
            .iter()
            .filter_map(|entry| {
                let Value::Map(m) = entry else { return None };
                let kind = match lookup(m, "kind") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => return None,
                };
                let count = match lookup(m, "count") {
                    Some(Value::UInt(n)) => *n,
                    _ => 0,
                };
                let days = match lookup(m, "days") {
                    Some(Value::Seq(rows)) => rows
                        .iter()
                        .filter_map(|row| {
                            let Value::Map(r) = row else { return None };
                            let day = match lookup(r, "day") {
                                Some(Value::UInt(d)) => *d as u32,
                                _ => return None,
                            };
                            let count = match lookup(r, "count") {
                                Some(Value::UInt(n)) => *n,
                                _ => 0,
                            };
                            let hash = match lookup(r, "hash") {
                                Some(Value::Str(h)) => h.clone(),
                                _ => String::new(),
                            };
                            Some((day, count, hash))
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Some((kind, count, days))
            })
            .collect()
    };
    let left = kinds_of(a);
    let right = kinds_of(b);
    let mut kinds: Vec<&str> = left
        .iter()
        .map(|(k, _, _)| k.as_str())
        .chain(right.iter().map(|(k, _, _)| k.as_str()))
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    let mut out = Vec::new();
    for kind in kinds {
        let l = left.iter().find(|(k, _, _)| k == kind);
        let r = right.iter().find(|(k, _, _)| k == kind);
        let first_divergence = {
            let ld = l.map(|(_, _, d)| d.as_slice()).unwrap_or(&[]);
            let rd = r.map(|(_, _, d)| d.as_slice()).unwrap_or(&[]);
            let mut days: Vec<u32> = ld
                .iter()
                .map(|(d, _, _)| *d)
                .chain(rd.iter().map(|(d, _, _)| *d))
                .collect();
            days.sort_unstable();
            days.dedup();
            days.into_iter().find(|d| {
                let lrow = ld.iter().find(|(x, _, _)| x == d);
                let rrow = rd.iter().find(|(x, _, _)| x == d);
                lrow != rrow
            })
        };
        let entry = TrailKindDiff {
            kind: kind.to_owned(),
            left: l.map(|(_, c, _)| *c),
            right: r.map(|(_, c, _)| *c),
            first_divergence,
        };
        if entry.left != entry.right || entry.first_divergence.is_some() {
            out.push(entry);
        }
    }
    out
}

/// Parses a JSON document into the in-tree [`Value`].
///
/// Accepts exactly what the vendored writer emits (objects, arrays,
/// strings with escapes, numbers, booleans, null) plus arbitrary
/// whitespace; rejects trailing garbage. Numbers without `.`/`e` parse
/// as `UInt` (or `Int` when negative), matching the writer's choices so
/// a parse/serialize round trip is stable.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair: \uD8xx must be followed by
                            // a low surrogate escape.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(ch.ok_or_else(|| {
                                format!("invalid \\u escape near byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = text.chars().next().ok_or("unterminated string")?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(test_orders: u64, elapsed: f64) -> Value {
        Value::Map(vec![
            ("seed".into(), Value::UInt(7)),
            (
                "headline".into(),
                Value::Map(vec![
                    ("psrs".into(), Value::UInt(120)),
                    ("test_orders".into(), Value::UInt(test_orders)),
                ]),
            ),
            (
                "stage_timings".into(),
                Value::Map(vec![("crawl".into(), Value::Float(elapsed))]),
            ),
            (
                "days".into(),
                Value::Seq(vec![Value::Map(vec![
                    ("day".into(), Value::UInt(131)),
                    ("elapsed_ms".into(), Value::Float(elapsed)),
                ])]),
            ),
        ])
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = manifest(9, 1.25);
        let text = serde_json::to_string_pretty(&v).expect("renders");
        let parsed = parse_json(&text).expect("parses");
        assert!(diff(&v, &parsed).is_empty());
        // And the re-rendered text is byte-identical: the parser keeps
        // the writer's number representations.
        assert_eq!(
            serde_json::to_string_pretty(&parsed).expect("renders"),
            text
        );
    }

    #[test]
    fn parse_handles_escapes_and_rejects_garbage() {
        let v =
            parse_json(r#"{"a": "tab\tquote\" é", "b": [-3, 2.5, null, true]}"#).expect("parses");
        match &v {
            Value::Map(m) => {
                assert_eq!(m[0].1, Value::Str("tab\tquote\" \u{e9}".into()));
                assert_eq!(
                    m[1].1,
                    Value::Seq(vec![
                        Value::Int(-3),
                        Value::Float(2.5),
                        Value::Null,
                        Value::Bool(true)
                    ])
                );
            }
            other => panic!("expected map, got {other:?}"),
        }
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
    }

    #[test]
    fn wall_clock_differences_are_ignored() {
        let a = manifest(9, 1.0);
        let b = manifest(9, 99.0);
        assert!(diff(&a, &b).is_empty(), "timing-only changes must not diff");
    }

    #[test]
    fn deterministic_differences_are_reported_with_deltas() {
        let a = manifest(9, 1.0);
        let b = manifest(12, 1.0);
        let d = diff(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "headline.test_orders");
        assert_eq!(d[0].delta, Some(3.0));
        assert_eq!(d[0].to_string(), "headline.test_orders: 9 -> 12 (+3)");
    }

    #[test]
    fn missing_paths_and_shape_changes_are_reported() {
        let a = parse_json(r#"{"x": 1, "y": [1, 2]}"#).unwrap();
        let b = parse_json(r#"{"x": {"nested": 1}, "y": [1]}"#).unwrap();
        let d = diff(&a, &b);
        let paths: Vec<_> = d.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["x", "y[1]"]);
        assert_eq!(d[1].right, None);
    }

    #[test]
    fn trail_diff_reports_first_divergent_day_per_kind() {
        let mk = |day2_hash: &str, rotate_count: u64| {
            parse_json(&format!(
                r#"{{"event_trail": [
                    {{"kind": "rotate", "count": {rotate_count}, "days": [
                        {{"day": 1, "count": 2, "hash": "aaaa"}},
                        {{"day": 2, "count": 1, "hash": "{day2_hash}"}}
                    ]}},
                    {{"kind": "file-case", "count": 3, "days": [
                        {{"day": 2, "count": 3, "hash": "cccc"}}
                    ]}}
                ]}}"#
            ))
            .expect("parses")
        };
        // Identical trails: no entries.
        assert!(trail_diff(&mk("bbbb", 3), &mk("bbbb", 3)).is_empty());
        // Same counts, day-2 payload hash differs for one kind.
        let d = trail_diff(&mk("bbbb", 3), &mk("beef", 3));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, "rotate");
        assert_eq!(d[0].first_divergence, Some(2));
        assert_eq!(
            d[0].to_string(),
            "rotate: 3 -> 3 events, first divergence day 2"
        );
        // A kind absent on one side reports dashed totals.
        let empty = parse_json(r#"{"event_trail": []}"#).unwrap();
        let d = trail_diff(&mk("bbbb", 3), &empty);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].right, None);
    }

    #[test]
    fn cost_timings_subtree_is_wall_clock() {
        let a = parse_json(r#"{"cost_timings": {"crawl": {"total_ms": 5.0}}}"#).unwrap();
        let b = parse_json(r#"{"cost_timings": {"crawl": {"total_ms": 9.0}}}"#).unwrap();
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn numbers_compare_by_value_across_representations() {
        let a = parse_json(r#"{"n": 1}"#).unwrap();
        let b = parse_json(r#"{"n": 1.0}"#).unwrap();
        assert!(diff(&a, &b).is_empty());
    }
}

//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--preset tiny|small|paper|mega] [--seed N] [--out DIR]
//!                    [--threads N] [--no-trace] [--trace-level off|stage|event]
//!                    [--js-engine treewalk|vm]
//! repro all          # every experiment + EXPERIMENTS.md
//! repro list         # experiment index
//! repro explain campaign <name|index>   # causal chain for one campaign
//! repro explain store <domain>          # causal chain for one store domain
//! repro explain psr <day> <rank>        # why a PSR appeared there
//!
//! repro <experiment> --checkpoint-every N [--checkpoint-dir DIR]
//!                    # drop a resumable checkpoint every N crawl days
//! repro <experiment> --resume-from DIR/checkpoint-dayNNNN.ssnp
//!                    # resume a checkpointed run; output is bit-identical
//! repro sweep <checkpoint.ssnp> [--offsets -14,-7,0,7,14]
//!                    # fork one checkpoint into seizure-offset arms
//! repro diff <manifest_a.json> <manifest_b.json> [--expect-equal]
//!                    # structural manifest diff, wall-clock ignored;
//!                    # includes a per-kind event-trail comparison
//! repro profile [--preset ...] [--threads N]
//!                    # run the study and print the hierarchical cost
//!                    # profile (deterministic columns + wall clock)
//! repro bench-report <base.json> <current.json> [--deny]
//!                    # compare the latest BENCH_paper.json entries;
//!                    # --deny exits non-zero on cost regressions
//! repro serve [days] [--preset ...] [--threads N]
//!                    # query-plane loadgen: workers hammer the published
//!                    # epoch while the world ticks and republishes
//! ```
//!
//! `--threads N` drives both planes — the crawler's per-vertical fan-out
//! and the simulation's tick-stage planners. Output is bit-identical for
//! every `N` (default: serial).
//!
//! `--js-engine` selects how VanGogh runs page scripts: the cached
//! bytecode `vm` (default) or the reference `treewalk` interpreter.
//! Every dataset and the manifest headline are identical either way —
//! the pipeline `js_engines_are_study_equivalent` test pins that.
//!
//! Tracing is on by default for `repro` runs: the flight recorder and the
//! tick-plane event trail feed `repro explain`, and the wall-clock stage
//! timeline is written to `reports/trace.json` (load it at
//! <https://ui.perfetto.dev>). `--no-trace` turns all of it off; benches
//! and library users default to off.
//!
//! Experiments: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6
//! classifier validation termbias labels seizures supplier conversion
//! purchases.

use std::collections::HashMap;
use std::io::Write as _;

use search_seizure::analysis::{ecosystem, figures, interventions, sidechannel, validation};
use search_seizure::report::{experiments_json, experiments_markdown, ExperimentReport};
use search_seizure::{explain, RunCheckpoint, RunOptions, StudyOutput};
use ss_bench::{manifest_diff, Preset};
use ss_obs::TraceLevel;
use ss_stats::render;

struct Args {
    experiment: String,
    /// Positional operands after the experiment name (`explain` takes
    /// `campaign <id>` / `store <domain>` / `psr <day> <rank>`).
    operands: Vec<String>,
    preset: Preset,
    seed: u64,
    out_dir: Option<String>,
    threads: usize,
    trace: TraceLevel,
    js_engine: ss_web::js::JsEngine,
    /// Drop a resumable checkpoint every N crawl days.
    checkpoint_every: Option<u32>,
    /// Directory for checkpoint frames (default `checkpoints/`).
    checkpoint_dir: Option<String>,
    /// Resume the study from a checkpoint frame instead of day 0.
    resume_from: Option<String>,
    /// Seizure-day offsets for `repro sweep` arms.
    offsets: Vec<i64>,
    /// `repro diff`: exit non-zero if the manifests differ.
    expect_equal: bool,
    /// `repro bench-report`: exit non-zero on gated cost regressions.
    deny: bool,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    let mut preset = Preset::Small;
    let mut seed = 2014;
    let mut out_dir = None;
    let mut threads = 1;
    // Tracing defaults ON for repro runs: `repro explain` needs the
    // retained event trail, and the Perfetto timeline is ~free at this
    // scale. Benches and library users default to off.
    let mut trace = TraceLevel::Event;
    let mut js_engine = ss_web::js::JsEngine::default();
    let mut checkpoint_every = None;
    let mut checkpoint_dir = None;
    let mut resume_from = None;
    let mut offsets = vec![-7, 0, 7];
    let mut expect_equal = false;
    let mut deny = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--preset" => {
                let v = args.next().expect("--preset needs a value");
                preset = Preset::parse(&v).unwrap_or_else(|| panic!("unknown preset {v:?}"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("numeric seed");
            }
            "--out" => out_dir = Some(args.next().expect("--out needs a directory")),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("numeric thread count");
            }
            "--no-trace" => trace = TraceLevel::Off,
            "--js-engine" => {
                let v = args.next().expect("--js-engine needs a value");
                js_engine = ss_web::js::JsEngine::parse(&v)
                    .unwrap_or_else(|| panic!("unknown js engine {v:?} (treewalk|vm)"));
            }
            "--trace-level" => {
                let v = args.next().expect("--trace-level needs a value");
                trace = TraceLevel::parse(&v)
                    .unwrap_or_else(|| panic!("unknown trace level {v:?} (off|stage|event)"));
            }
            "--checkpoint-every" => {
                checkpoint_every = Some(
                    args.next()
                        .expect("--checkpoint-every needs a day count")
                        .parse()
                        .expect("numeric day count"),
                );
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(args.next().expect("--checkpoint-dir needs a directory"));
            }
            "--resume-from" => {
                resume_from = Some(args.next().expect("--resume-from needs a checkpoint path"));
            }
            "--offsets" => {
                let v = args.next().expect("--offsets needs a comma-separated list");
                offsets = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad offset {s:?} in --offsets"))
                    })
                    .collect();
                assert!(!offsets.is_empty(), "--offsets needs at least one value");
            }
            "--expect-equal" => expect_equal = true,
            "--deny" => deny = true,
            other if other.starts_with("--") => panic!("unknown flag {other:?}"),
            operand => positional.push(operand.to_owned()),
        }
    }
    let mut positional = positional.into_iter();
    Args {
        experiment: positional.next().unwrap_or_else(|| "list".to_owned()),
        operands: positional.collect(),
        preset,
        seed,
        out_dir,
        threads,
        trace,
        js_engine,
        checkpoint_every,
        checkpoint_dir,
        resume_from,
        offsets,
        expect_equal,
        deny,
    }
}

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "table1",
        "Table 1 — per-vertical PSRs/doorways/stores/campaigns",
    ),
    ("table2", "Table 2 — per-campaign fleets and peak durations"),
    ("table3", "Table 3 — seizures per brand-protection firm"),
    ("fig1", "Figure 1 — iframe cloaking, same URL two ways"),
    ("fig2", "Figure 2 — campaign attribution of PSRs over time"),
    ("fig3", "Figure 3 — poisoning envelopes per vertical"),
    (
        "fig4",
        "Figure 4 — PSR visibility vs order volume, four campaigns",
    ),
    ("fig5", "Figure 5 — coco*.com case study"),
    (
        "fig6",
        "Figure 6 — PHP?P= international stores around a seizure",
    ),
    ("classifier", "§4.2.2 — cross-validated campaign classifier"),
    (
        "validation",
        "§4.1.3 — detection validation vs ground truth",
    ),
    ("termbias", "§4.1.1 — term-selection bias check"),
    ("labels", "§5.2.2 — hacked-label coverage and delay"),
    ("seizures", "§5.3 — seizure coverage, lifetimes, reactions"),
    ("supplier", "§4.5 — supplier shipment ledger"),
    ("conversion", "§5.2.3 — conversion metrics"),
    ("purchases", "§4.3 — order-sampling and purchase programme"),
    (
        "ablation",
        "§3.1.1 — detector ablation: Dagger alone vs +VanGogh",
    ),
    (
        "manifest",
        "run manifest — stage timings, counters, headline observables",
    ),
    (
        "jsengine",
        "§3.1.2 — VanGogh execution engine: bytecode VM vs treewalker",
    ),
    (
        "queryplane",
        "query plane — epoch SERP index: walk vs full scan, cache, serve",
    ),
    (
        "profile",
        "cost-model profiler — hierarchical phase costs and work units",
    ),
];

fn main() {
    let args = parse_args();
    if args.experiment == "list" {
        println!("Experiments ({} total):", EXPERIMENTS.len());
        for (id, title) in EXPERIMENTS {
            println!("  {id:<11} {title}");
        }
        println!("  all         run everything and write EXPERIMENTS.md");
        println!("  explain     causal chain: campaign <id> | store <domain> | psr <day> <rank>");
        println!("  sweep       fork a checkpoint into seizure-offset intervention arms");
        println!("  diff        structural manifest diff (wall-clock fields ignored)");
        println!("  serve       SERP loadgen over published epochs while the world ticks");
        println!("  bench-report  compare two BENCH_paper.json logs; --deny gates regressions");
        return;
    }

    // diff needs no study run: it compares two manifests already on disk.
    if args.experiment == "diff" {
        run_diff(&args);
        return;
    }

    // bench-report compares two trajectory logs already on disk.
    if args.experiment == "bench-report" {
        run_bench_report(&args);
        return;
    }

    // sweep forks an existing checkpoint instead of building a world.
    if args.experiment == "sweep" {
        run_sweep(&args);
        return;
    }

    // serve needs a world but no study: it loadgens the query plane.
    if args.experiment == "serve" {
        run_serve(&args);
        return;
    }

    // fig1 needs no study run — it is a live demo against a fresh world.
    if args.experiment == "fig1" {
        let report = fig1_report(args.seed);
        print!("{}", report.to_markdown(true));
        return;
    }

    eprintln!(
        "[repro] running study: {} (this builds the world, crawls the window, \
         samples orders, classifies campaigns)",
        args.preset.describe(args.seed)
    );
    let t0 = std::time::Instant::now();
    let mut cfg = args.preset.config(args.seed);
    // One flag drives both planes: crawl fan-out and tick planners.
    cfg.set_threads(args.threads);
    cfg.set_trace(args.trace);
    cfg.crawler.js_engine = args.js_engine;
    if args.trace != TraceLevel::Off {
        // Wall-clock half of the trace plane: a Chrome-trace-event
        // timeline, excluded from every determinism comparison.
        cfg.trace_path
            .get_or_insert_with(|| "reports/trace.json".to_owned());
    }
    let trace_path = cfg.trace_path.clone();
    // Every repro run leaves a manifest behind (CI uploads it).
    cfg.manifest_path
        .get_or_insert_with(|| "reports/run_manifest.json".to_owned());
    let manifest_path = cfg.manifest_path.clone().expect("just set");
    if let Some(p) = &args.resume_from {
        eprintln!("[repro] resuming from {p}");
    }
    let mut out = search_seizure::Study::new(cfg)
        .run_with(RunOptions {
            resume_from: args.resume_from.clone(),
            checkpoint_every: args.checkpoint_every,
            checkpoint_dir: args.checkpoint_dir.clone(),
        })
        .expect("study preset runs");
    eprintln!("[repro] study done in {:.1?}", t0.elapsed());
    if let Some(every) = args.checkpoint_every {
        eprintln!(
            "[repro] checkpoints every {every} crawl days in {}/",
            args.checkpoint_dir.as_deref().unwrap_or("checkpoints")
        );
    }
    eprint!("{}", out.manifest.summary_table());
    eprintln!("[repro] wrote {manifest_path}");
    if let Some(p) = &trace_path {
        eprintln!("[repro] wrote {p} (open at https://ui.perfetto.dev)");
    }

    if args.experiment == "explain" {
        print!("{}", run_explain(&out, &args.operands));
        return;
    }

    let reports: Vec<ExperimentReport> = if args.experiment == "all" {
        let mut all = vec![fig1_report(args.seed)];
        for (id, _) in EXPERIMENTS.iter().filter(|(id, _)| *id != "fig1") {
            all.push(run_experiment(id, &mut out));
        }
        // The one-pass invariant: the full experiment suite rode the
        // shared aggregation scan — no analysis re-read the PSR corpus.
        let passes = out.metrics.counter_total("analysis.passes");
        assert_eq!(
            passes, 1,
            "repro all must perform exactly one PSR pass, measured {passes}"
        );
        all
    } else {
        vec![run_experiment(&args.experiment, &mut out)]
    };

    for r in &reports {
        print!("{}", r.to_markdown(true));
    }

    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        let md = experiments_markdown(&args.preset.describe(args.seed), &reports, true);
        write_file(&format!("{dir}/EXPERIMENTS.md"), &md);
        write_file(
            &format!("{dir}/experiments.json"),
            &experiments_json(&reports),
        );
        eprintln!("[repro] wrote {dir}/EXPERIMENTS.md and experiments.json");
    }
}

/// `repro diff a.json b.json` — structural manifest diff. Wall-clock
/// fields (stage timings, spans, per-day elapsed) are excluded, so two
/// runs of the same study diff clean regardless of machine speed.
fn run_diff(args: &Args) {
    let [a_path, b_path] = args.operands.as_slice() else {
        panic!("usage: repro diff <manifest_a.json> <manifest_b.json> [--expect-equal]");
    };
    let read = |p: &String| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        manifest_diff::parse_json(&text).unwrap_or_else(|e| panic!("parse {p}: {e}"))
    };
    let (a, b) = (read(a_path), read(b_path));
    let entries = manifest_diff::diff(&a, &b);
    if entries.is_empty() {
        println!("manifests agree ({a_path} vs {b_path}; wall-clock fields ignored)");
        return;
    }
    println!(
        "{} difference(s) ({a_path} -> {b_path}; wall-clock fields ignored):",
        entries.len()
    );
    for e in &entries {
        println!("  {e}");
    }
    // The event trail pinpoints *when* two runs first made different
    // decisions — per event kind, the totals and the first divergent day.
    let trail = manifest_diff::trail_diff(&a, &b);
    if !trail.is_empty() {
        println!("event trail ({} kind(s) diverge):", trail.len());
        for t in &trail {
            println!("  {t}");
        }
    }
    if args.expect_equal {
        std::process::exit(1);
    }
}

/// `repro bench-report <base> <current>` — compares the latest entries of
/// two perf-trajectory logs (`BENCH_paper.json` envelopes or bare
/// profiles). Deterministic cost metrics gate at per-metric tolerances;
/// wall-clock rows are context only. `--deny` turns regressions into a
/// non-zero exit for CI.
fn run_bench_report(args: &Args) {
    let [base_path, cur_path] = args.operands.as_slice() else {
        panic!("usage: repro bench-report <base.json> <current.json> [--deny]");
    };
    let read = |p: &String| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        ss_bench::trajectory::normalize_log(
            manifest_diff::parse_json(&text).unwrap_or_else(|e| panic!("parse {p}: {e}")),
        )
    };
    let deltas = ss_bench::trajectory::compare(&read(base_path), &read(cur_path));
    let changed: Vec<_> = deltas
        .iter()
        .filter(|d| d.rel.map(|r| r != 0.0).unwrap_or(true))
        .collect();
    println!(
        "bench report: {base_path} -> {cur_path} ({} metric(s), {} changed)",
        deltas.len(),
        changed.len()
    );
    for d in &changed {
        println!("  {d}");
    }
    let regressions: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
    if regressions.is_empty() {
        println!("no cost regressions beyond tolerance");
        return;
    }
    println!("{} cost regression(s) beyond tolerance:", regressions.len());
    for d in &regressions {
        println!("  {d}");
    }
    if args.deny {
        std::process::exit(1);
    }
}

/// `repro serve [days]` — the query-plane loadgen: build a world, advance
/// it to the crawl window, then let `--threads` workers hammer the
/// published epoch while the main thread keeps ticking and republishing.
/// Reports sustained queries/sec plus the engine's own query/cache-hit
/// counters for the run.
fn run_serve(args: &Args) {
    let days: u32 = args
        .operands
        .first()
        .map(|d| d.parse().unwrap_or_else(|_| panic!("bad day count {d:?}")))
        .unwrap_or(14);
    let threads = args.threads.max(1);
    eprintln!(
        "[repro] serve: {} — building world, advancing to the crawl window",
        args.preset.describe(args.seed)
    );
    let cfg = args.preset.config(args.seed);
    let mut world = ss_eco::World::build(cfg.scenario.clone()).expect("serve preset world builds");
    world.run_until(cfg.crawl_start);
    eprintln!("[repro] serve: {threads} worker(s), {days} day(s) of ticks");
    let report =
        ss_bench::serve::run_loadgen(&mut world, days, threads, std::time::Duration::from_secs(2));
    println!("# repro serve — epoch read-path throughput\n");
    println!("| metric | value |");
    println!("|---|---|");
    println!("| worker threads | {} |", report.threads);
    println!("| days ticked (epochs republished) | {} |", report.days);
    println!("| worker queries | {} |", report.queries);
    println!("| wall clock | {:.2}s |", report.wall_s);
    println!("| sustained qps | {:.0} |", report.qps);
    println!(
        "| engine queries (incl. tick planners) | {} |",
        report.engine_queries
    );
    println!("| engine SERP cache hits | {} |", report.engine_cache_hits);
}

/// `repro sweep <checkpoint>` — fork one checkpoint into K intervention
/// arms. Each arm shifts every still-scheduled scripted seizure by a
/// per-arm day offset, resumes to the end of the window in its own
/// thread, and reports headline deltas against the offset-0 baseline.
fn run_sweep(args: &Args) {
    use serde::Serialize as _;
    use ss_types::snapshot::Snapshot as _;

    let path = args.operands.first().unwrap_or_else(|| {
        panic!("usage: repro sweep <checkpoint.ssnp> [--offsets -14,-7,0,7,14]")
    });
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let probe = RunCheckpoint::decode(&bytes).unwrap_or_else(|e| panic!("decode {path}: {e}"));
    let mut offsets = args.offsets.clone();
    if !offsets.contains(&0) {
        // The baseline arm anchors every delta; always run it.
        offsets.insert(0, 0);
    }
    eprintln!(
        "[repro] sweep: {} arms forked from {path} (resumes {}; offsets {offsets:?})",
        offsets.len(),
        probe.next_day,
    );
    let t0 = std::time::Instant::now();
    let arms: Vec<(i64, StudyOutput)> = std::thread::scope(|scope| {
        let handles: Vec<_> = offsets
            .iter()
            .map(|&offset| {
                let bytes = &bytes;
                scope.spawn(move || {
                    let mut ckpt = RunCheckpoint::decode(bytes).expect("checkpoint decodes");
                    ckpt.world.shift_scripted_seizures(offset);
                    let mut cfg = args.preset.config(args.seed);
                    cfg.set_threads(args.threads);
                    cfg.set_trace(TraceLevel::Off);
                    let out = search_seizure::Study::new(cfg)
                        .resume(ckpt)
                        .unwrap_or_else(|e| {
                            panic!(
                                "arm {offset:+}: {e} (the sweep's --preset/--seed must match \
                             the run that wrote the checkpoint)"
                            )
                        });
                    (offset, out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("arm thread"))
            .collect()
    });
    eprintln!("[repro] sweep done in {:.1?}", t0.elapsed());

    let baseline = arms
        .iter()
        .find(|(o, _)| *o == 0)
        .map(|(_, out)| out.manifest.headline.serialize())
        .expect("baseline arm present");
    println!("# Intervention sweep — seizure-day offsets\n");
    for (offset, out) in &arms {
        let headline = out.manifest.headline.serialize();
        if *offset == 0 {
            println!(
                "## offset +0 (baseline)\n{}\n",
                serde_json::to_string_pretty(&headline).expect("headline renders")
            );
            continue;
        }
        let deltas = manifest_diff::diff(&baseline, &headline);
        println!(
            "## offset {offset:+} — {} headline change(s) vs baseline",
            deltas.len()
        );
        if deltas.is_empty() {
            println!("  (headline unchanged)");
        }
        for d in &deltas {
            println!("  {d}");
        }
        println!();
    }
}

/// Dispatches `repro explain <kind> …` to the provenance query layer and
/// returns the rendered chronological chain.
fn run_explain(out: &StudyOutput, operands: &[String]) -> String {
    let usage = "usage: repro explain campaign <name|index> | store <domain> | psr <day> <rank>";
    let chain = match operands {
        [kind, key] if kind == "campaign" => explain::explain_campaign(out, key),
        [kind, domain] if kind == "store" => explain::explain_store(out, domain),
        [kind, day, rank] if kind == "psr" => explain::explain_psr(
            out,
            day.parse().expect("numeric day index"),
            rank.parse().expect("numeric rank"),
        ),
        _ => panic!("{usage}"),
    };
    match chain {
        Some(c) => c.render(),
        None => "no causal chain found (unknown id, or nothing observed there)\n".to_owned(),
    }
}

fn write_file(path: &str, body: &str) {
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    f.write_all(body.as_bytes()).expect("write file");
}

fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

fn run_experiment(id: &str, out: &mut StudyOutput) -> ExperimentReport {
    match id {
        "table1" => table1_report(out),
        "table2" => table2_report(out),
        "table3" | "seizures" => seizures_report(out, id),
        "fig2" => fig2_report(out),
        "fig3" => fig3_report(out),
        "fig4" => fig4_report(out),
        "fig5" => fig5_report(out),
        "fig6" => fig6_report(out),
        "classifier" => classifier_report(out),
        "validation" => validation_report(out),
        "termbias" => termbias_report(out),
        "labels" => labels_report(out),
        "supplier" => supplier_report(out),
        "conversion" => conversion_report(out),
        "purchases" => purchases_report(out),
        "ablation" => ablation_report(out.world.cfg.seed),
        "manifest" => manifest_report(out),
        "jsengine" => jsengine_report(out),
        "queryplane" => queryplane_report(out),
        "profile" => profile_report(out),
        other => panic!("unknown experiment {other:?}; try `repro list`"),
    }
}

fn profile_report(out: &StudyOutput) -> ExperimentReport {
    let tree = ss_obs::render_tree(&out.metrics);
    let phases = out.metrics.costs().len();
    ExperimentReport::new("S13", "cost-model profiler — phase costs")
        .narrate(
            "Hierarchical self-time and cost profile of this run: per phase, \
             scope entries, allocation deltas (count/bytes/frees), typed work \
             units, and wall clock. Every column except the `*_ms` pair is \
             deterministic — bit-identical at any `--threads` value and \
             golden-gated — while wall clock is context only. The same data \
             ships as `reports/profile.folded` (wall-clock flamegraph) and \
             `reports/profile.cost.folded` (deterministic cost weights).",
        )
        .compare("phases recorded", "≥ 8", phases, false)
        .compare(
            "crawl docs fetched",
            "—",
            out.metrics
                .cost_stats("crawl/fetch")
                .map(|s| s.work[ss_obs::WorkKind::DocsFetched as usize])
                .unwrap_or(0),
            false,
        )
        .artifact("phase tree (costs + wall clock)", tree)
}

fn manifest_report(out: &StudyOutput) -> ExperimentReport {
    let m = &out.manifest;
    ExperimentReport::new("S10", "run manifest — telemetry summary")
        .narrate(
            "Provenance and instrumentation of this very run: per-stage wall-clock              spans, the deterministic counter/histogram registry, and the headline              observables the golden test pins.",
        )
        .compare("stages timed", "5", m.stage_timings.len(), false)
        .compare("distinct metrics recorded", "≥ 12", out.metrics.metric_names().len(), false)
        .compare("PSR observations", "—", m.headline.psrs, false)
        .compare("seizure notices observed", "—", m.headline.seizure_notices, false)
        .compare("test orders", "—", m.headline.test_orders, false)
        .artifact("summary table", m.summary_table())
}

fn jsengine_report(out: &StudyOutput) -> ExperimentReport {
    // Quick wall-clock head-to-head over the pagegen corpus; the cache
    // counters come from the study run itself (deterministic), the
    // timings from this machine (indicative, not pinned).
    let h = ss_bench::jsengine::head_to_head(100);
    let compiles = out.metrics.counter_total("simweb.js_compile");
    let hits = out.metrics.counter_total("simweb.js_cache_hit");
    ExperimentReport::new("S11", "§3.1.2 — VanGogh execution engine")
        .narrate(
            "VanGogh runs page scripts on a bytecode VM compiling each page \
             template once into a cached chunk; the original tree-walking \
             interpreter survives as the reference half of a differential \
             harness, and `--js-engine treewalk` swaps it back in. Every \
             dataset and the manifest headline are bit-identical either way; \
             only wall clock moves. Timings below are from this machine and \
             indicative — CI gates the script-only speedup at ≥2×.",
        )
        .compare(
            "VM speedup, script execution only",
            "≥ 2×",
            format!("{:.2}×", h.vm_script_speedup),
            false,
        )
        .compare(
            "VM speedup, full render (incl. HTML parse)",
            "—",
            format!("{:.2}×", h.vm_speedup),
            false,
        )
        .compare(
            "templates compiled this study (crawl window total)",
            "tiny vs renders",
            compiles,
            false,
        )
        .compare("chunk-cache hits this study", "—", hits, false)
        .compare(
            "cache hit rate",
            "→ 100% as the crawl proceeds",
            if compiles + hits > 0 {
                pct(hits as f64 / (compiles + hits) as f64)
            } else {
                "—".into()
            },
            false,
        )
}

fn queryplane_report(out: &StudyOutput) -> ExperimentReport {
    // Counters come from the study run itself (deterministic); the
    // walk-vs-scan timings and the serve loadgen run on this machine
    // (indicative, not pinned — the bit-identity of the SERPs is what
    // the differential suite gates).
    let queries = out.metrics.counter_total("engine.serp_queries");
    let hits = out.metrics.counter_total("engine.serp_cache_hits");

    // Micro head-to-head on the study's own final engine: reference
    // scan-and-sort vs the epoch's bounded walk, no cache either side.
    let term = ss_types::TermId(0);
    let day = out.window.1;
    let k = 100;
    let iters = 2_000u32;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(out.world.engine.serp_full_scan(term, day, k));
    }
    let scan_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
    let t1 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(out.world.engine.ranked_uncached(term, day, k));
    }
    let walk_us = t1.elapsed().as_secs_f64() * 1e6 / f64::from(iters);

    // Sustained read-path throughput: workers on the published epoch of
    // a small ticking world (the `repro serve` loadgen, shortened).
    let mut w = ss_eco::World::build(ss_eco::ScenarioConfig::tiny(out.world.cfg.seed))
        .expect("tiny world builds");
    w.run_until(ss_types::SimDate::from_day_index(ss_types::CRAWL_START_DAY));
    let serve = ss_bench::serve::run_loadgen(&mut w, 3, 4, std::time::Duration::from_millis(500));

    ExperimentReport::new("S12", "query plane — epoch-published SERP index")
        .narrate(
            "The search engine publishes an immutable epoch at every commit; \
             the traffic planner, the crawler, and the `repro serve` loadgen \
             all read the same snapshot — score-sorted postings walked with a \
             top-k heap, per-(term, day) SERP cache, id-based hits with URLs \
             resolved only at boundaries. SERPs are bit-identical to the \
             reference full scan (property-tested and CI-gated); only wall \
             clock moves. Timings below are from this machine and indicative.",
        )
        .compare("SERP queries this study", "—", queries, false)
        .compare(
            "SERP cache hits this study",
            "commit-stable days only",
            hits,
            false,
        )
        .compare(
            "full scan, µs/query (k=100)",
            "—",
            format!("{scan_us:.2}"),
            false,
        )
        .compare(
            "epoch walk, µs/query (k=100)",
            "—",
            format!("{walk_us:.2}"),
            false,
        )
        .compare(
            "walk speedup over full scan",
            "> 1×",
            format!("{:.2}×", scan_us / walk_us),
            false,
        )
        .compare(
            "serve loadgen qps (tiny world, 4 workers, 3 ticked days)",
            "—",
            format!("{:.0}", serve.qps),
            false,
        )
}

fn ablation_report(seed: u64) -> ExperimentReport {
    let a = validation::detector_ablation(seed, 10);
    ExperimentReport::new("S9", "§3.1.1 — detector ablation (extension)")
        .narrate(
            "Two crawls over the same world and days: the full stack versus \
             Dagger fetch-and-diff alone (rendering disabled). The gap is \
             exactly the iframe-cloaking population — the paper's argument for \
             why detection \"requires a complete browser\", quantified.",
        )
        .compare("poisoned domains (full stack)", "—", a.full_poisoned, false)
        .compare(
            "poisoned domains (Dagger only)",
            "—",
            a.dagger_only_poisoned,
            false,
        )
        .compare(
            "rendering-exclusive catches",
            "the iframe-cloaked population",
            a.rendering_exclusive,
            false,
        )
        .compare(
            "of which truly iframe-cloaking",
            "all",
            format!(
                "{} / {}",
                a.rendering_exclusive_iframe, a.rendering_exclusive
            ),
            false,
        )
        .compare(
            "PSR observations (full vs Dagger-only)",
            "—",
            format!("{} vs {}", a.full_psrs, a.dagger_only_psrs),
            false,
        )
}

fn fig1_report(seed: u64) -> ExperimentReport {
    use ss_eco::{ScenarioConfig, World};
    use ss_types::{SimDate, Url};
    use ss_web::http::{Fetcher, Request, UserAgent};

    let mut w = World::build(ScenarioConfig::tiny(seed)).expect("world builds");
    w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY + 5));
    let day = w.day;
    // Find a live iframe-cloaking doorway.
    let target = w
        .campaigns
        .iter()
        .flat_map(|c| c.doorways.iter().map(move |d| (c.cloak, d)))
        .find(|(cloak, d)| {
            matches!(cloak, ss_web::cloak::CloakMode::Iframe { .. }) && d.is_live(day)
        })
        .map(|(_, d)| d.domain);
    let Some(domain) = target else {
        return ExperimentReport::new("F1", "Figure 1 — iframe cloaking").narrate(
            "No live iframe-cloaking doorway in this tiny world; rerun with another seed.",
        );
    };
    let host = w.domains.get(domain).name.clone();
    let url = Url::root(host);
    let (bot, _) = w.fetch(&Request::crawler(url.clone()));
    let (user, _) = w.fetch(&Request::browser_from(
        url.clone(),
        Url::parse("http://google.com/search?q=x").expect("static url"),
    ));
    let rendered =
        ss_web::js::render::render(&user.body, &url.to_string(), UserAgent::Browser, None);
    let frames = rendered.iframes();
    ExperimentReport::new("F1", "Figure 1 — iframe cloaking, same URL two ways")
        .narrate(format!(
            "Fetching {url} as Googlebot returns a keyword-stuffed page ({} bytes). \
             A search-referred browser receives byte-identical markup, but rendering \
             its JavaScript attaches {} full-viewport iframe(s) loading the store — \
             the detection blind spot §3.1.1 describes.",
            bot.body.len(),
            frames.len()
        ))
        .compare(
            "same bytes to crawler and user",
            "yes (iframe cloaking)",
            (bot.body == user.body).to_string(),
            false,
        )
        .compare("rendered full-page iframes", "1", frames.len(), false)
        .compare(
            "iframe geometry",
            "width/height 100% or >800px",
            frames
                .first()
                .map(|(w, h, _)| format!("{w}×{h}"))
                .unwrap_or_default(),
            false,
        )
}

fn table1_report(out: &StudyOutput) -> ExperimentReport {
    let t1 = ecosystem::table1(out);
    let churn = ecosystem::mean_daily_churn(out);
    ExperimentReport::new("T1", "Table 1 — vertical breakdown")
        .narrate(
            "Absolute counts scale with the preset; the reproduction claims are the \
             orderings (heavily-targeted verticals dominate) and the partial \
             attribution shares.",
        )
        .compare("total PSRs", "2,773,044", t1.total.0, true)
        .compare("unique doorways", "27,008", t1.total.1, true)
        .compare("unique stores", "7,484", t1.total.2, true)
        .compare("campaigns observed", "52", t1.total.3, false)
        .compare(
            "PSRs attributed to campaigns",
            "58%",
            pct(t1.attributed_psr_fraction),
            false,
        )
        .compare(
            "stores attributed",
            "11%",
            pct(t1.attributed_store_fraction),
            false,
        )
        .compare("mean daily domain churn", "1.84%", pct(churn), false)
        .artifact("Table 1 (measured, paper in parentheses)", t1.to_markdown())
}

fn table2_report(out: &StudyOutput) -> ExperimentReport {
    let t2 = ecosystem::table2(out);
    let top5 = ecosystem::top_k_psr_share(out, 5);
    ExperimentReport::new("T2", "Table 2 — campaign fleets and peaks")
        .narrate(
            "Campaign burstiness: the peak range is the shortest span holding ≥60% \
             of a campaign's PSRs (§5.1.2). The skew claim: a handful of campaigns \
             carry most attributed PSRs.",
        )
        .compare("campaigns tabulated", "38 (of 52)", t2.rows.len(), false)
        .compare(
            "mean peak duration",
            "51.3 days",
            format!("{:.1} days", t2.mean_peak_days),
            false,
        )
        .compare(
            "top-5 campaign share of attributed PSRs",
            "majority (skewed)",
            pct(top5),
            false,
        )
        .artifact("Table 2 (measured)", t2.to_markdown())
}

fn fig2_report(out: &StudyOutput) -> ExperimentReport {
    // The paper plots Abercrombie, Beats By Dre, Louis Vuitton, Uggs.
    let wanted = ["Abercrombie", "Beats By Dre", "Louis Vuitton", "Uggs"];
    let mut report = ExperimentReport::new("F2", "Figure 2 — stacked campaign attribution")
        .narrate(
            "Per-vertical stacked shares: % of crawled results poisoned, split by \
             attributed campaign, with the penalized share at the bottom — \
             regenerated as CSV per vertical plus terminal sparklines.",
        );
    for (vi, mv) in out.monitored.iter().enumerate() {
        if !wanted.contains(&mv.name.as_str()) && vi >= 4 {
            continue;
        }
        let f2 = figures::fig2(out, vi, 5);
        report = report
            .artifact(&format!("{} — sparklines", f2.name), f2.to_text(48))
            .artifact(&format!("{} — CSV", f2.name), f2.to_csv());
    }
    report
}

fn fig3_report(out: &StudyOutput) -> ExperimentReport {
    let (rows, series) = figures::fig3(out);
    let mut report = ExperimentReport::new("F3", "Figure 3 — poisoning envelopes").narrate(
        "Min/max daily poisoned share per vertical (top-10 and crawled depth). \
             The claim under test is the cross-vertical ordering: the heavily \
             targeted verticals of the paper should also lead here.",
    );
    // Rank correlation of vertical orderings (measured vs paper, by
    // top-100 max).
    let mut measured: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r.top100.1))
        .collect();
    let mut paper: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r.paper.3))
        .collect();
    measured.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    paper.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let m_rank: HashMap<usize, usize> = measured
        .iter()
        .enumerate()
        .map(|(r, (i, _))| (*i, r))
        .collect();
    let p_rank: HashMap<usize, usize> = paper
        .iter()
        .enumerate()
        .map(|(r, (i, _))| (*i, r))
        .collect();
    let xs: Vec<f64> = (0..rows.len()).map(|i| m_rank[&i] as f64).collect();
    let ys: Vec<f64> = (0..rows.len()).map(|i| p_rank[&i] as f64).collect();
    let rho = ss_stats::corr::pearson(&xs, &ys).unwrap_or(0.0);
    report = report.compare(
        "vertical intensity ordering (rank corr. vs paper)",
        "1.0 by definition",
        format!("{rho:.2}"),
        true,
    );
    report.artifact(
        "Figure 3 (sparklines)",
        figures::fig3_text(&rows, &series, 40),
    )
}

fn fig4_report(out: &StudyOutput) -> ExperimentReport {
    let mut report = ExperimentReport::new("F4", "Figure 4 — visibility vs orders").narrate(
        "Four campaign panels: PSR prevalence (top-100/top-10/labeled) and a \
             representative store's order volume and rate. The paper's claim is \
             the correlation between search visibility and order activity.",
    );
    for name in ["KEY", "MOONKIS", "VERA", "PHP?P="] {
        let Some(panel) = figures::fig4(out, name) else {
            continue;
        };
        if let Some(r) = panel.visibility_rate_correlation {
            report = report.compare(
                &format!("{name}: corr(PSRs, order rate)"),
                "positive",
                format!("{r:.2}"),
                false,
            );
        }
        let spark = format!(
            "top100 {}\ntop10  {}\nrate   {}",
            render::sparkline_compact(&panel.top100, 48),
            render::sparkline_compact(&panel.top10, 48),
            panel
                .rate
                .as_ref()
                .map(|r| render::sparkline_compact(r, 48))
                .unwrap_or_else(|| "(no sampled store)".into()),
        );
        report = report
            .artifact(&format!("{name} — panel sparklines"), spark)
            .artifact(&format!("{name} — CSV"), panel.to_csv());
    }
    report
}

fn fig5_report(out: &StudyOutput) -> ExperimentReport {
    match figures::fig5(out, "coco") {
        Some(f5) => {
            let rotations = f5.domains.len();
            ExperimentReport::new("F5", "Figure 5 — coco*.com case study")
                .narrate(
                    "One BIGLOVE Chanel storefront rotating across coco*.com domains: \
                     PSR visibility, AWStats daily traffic, and order activity move \
                     together across the rotations.",
                )
                .compare(
                    "storefront domains used",
                    "3 (two rotations)",
                    rotations,
                    true,
                )
                .compare(
                    "traffic observed (pages, window total)",
                    "14K–29K pages/day",
                    format!("{:.0} total", f5.traffic_pages.sum()),
                    false,
                )
                .artifact("Figure 5 — CSV", f5.to_csv())
        }
        None => ExperimentReport::new("F5", "Figure 5 — coco*.com case study").narrate(
            "The coco*.com storefront was not observed in this run (it goes live in \
             June 2014; use the paper preset or extend the crawl window).",
        ),
    }
}

fn fig6_report(out: &StudyOutput) -> ExperimentReport {
    let patterns = [
        "abercrombie-uk",
        "abercrombie-de",
        "hollister-uk",
        "woolrich-de",
    ];
    match figures::fig6(out, "PHP?P=", &patterns) {
        Some(f6) => {
            let mut lines = String::new();
            for (domain, samples) in &f6.stores {
                lines.push_str(&format!("{domain}: "));
                for (day, n) in samples {
                    lines.push_str(&format!("({day},{n}) "));
                }
                lines.push('\n');
            }
            for (domain, day) in &f6.seizures {
                lines.push_str(&format!("SEIZED {domain} on {day}\n"));
            }
            ExperimentReport::new("F6", "Figure 6 — PHP?P= international stores")
                .narrate(
                    "Order-number samples for the campaign's international stores. \
                     The seized store's slope dips at its seizure; siblings are \
                     unaffected — seizing one domain does not dent the campaign.",
                )
                .compare("international stores tracked", "4", f6.stores.len(), true)
                .compare(
                    "seizures observed among them",
                    "1 (Abercrombie UK, Feb 9)",
                    f6.seizures.len(),
                    true,
                )
                .artifact("order-number samples", lines)
        }
        None => ExperimentReport::new("F6", "Figure 6 — PHP?P= international stores").narrate(
            "The scripted PHP?P= stores were not sampled in this run (the Feb 2014 \
             seizure beat needs a crawl window covering day 219).",
        ),
    }
}

fn classifier_report(out: &StudyOutput) -> ExperimentReport {
    let v = validation::classifier(out);
    let mut report = ExperimentReport::new("S1", "§4.2.2 — campaign classifier")
        .narrate(
            "L1-regularized logistic regression over tag-attribute-value bag-of-words \
             features, one-vs-rest across the 52 campaigns, refined with expert \
             validation rounds. Ground-truth precision/recall are reproduction-only \
             scores the paper could not compute.",
        )
        .compare("k-fold CV accuracy", "86.8%", pct(v.cv_accuracy), false)
        .compare("chance baseline", "1.9%", pct(v.chance), false)
        .compare("labeled pages", "491", v.labeled, true)
        .compare(
            "ground-truth precision (confident)",
            "n/a in paper",
            pct(v.truth_precision),
            false,
        )
        .compare(
            "ground-truth recall",
            "n/a in paper",
            pct(v.truth_recall),
            false,
        );
    // Interpretability: top features for the biggest campaigns.
    let mut blob = String::new();
    for name in ["KEY", "BIGLOVE", "MSVALIDATE"] {
        if let Some(c) = out.attribution.class_index(name) {
            let feats = out.attribution.top_features_of(c, 5);
            if !feats.is_empty() {
                blob.push_str(&format!("{name}:\n"));
                for (tok, w) in feats {
                    blob.push_str(&format!("  {w:.3}  {tok}\n"));
                }
            }
        }
    }
    if !blob.is_empty() {
        report = report.artifact("most characteristic HTML features", blob);
    }
    report
}

fn validation_report(out: &StudyOutput) -> ExperimentReport {
    let v = validation::detection(out);
    ExperimentReport::new("S2", "§4.1.3 — detection validation")
        .narrate(
            "The paper hand-checked 1.8K sampled results (0 false positives, 1.2% \
             false negatives); the reproduction scores every verdict against \
             ground truth.",
        )
        .compare("doorway false positives", "0", v.false_positives, false)
        .compare("doorway false-negative rate", "1.2%", pct(v.fn_rate), false)
        .compare("store false positives", "0", v.store_false_positives, false)
        .compare("doorways confirmed", "n/a", v.true_positives, false)
}

fn termbias_report(out: &mut StudyOutput) -> ExperimentReport {
    let b = validation::term_bias(out);
    ExperimentReport::new("S3", "§4.1.1 — term-selection bias")
        .narrate(
            "Alternate suggest-derived term sets for the doorway-derived verticals, \
             crawled for one day: different strings, same campaigns.",
        )
        .compare(
            "term overlap",
            "4 / 1000",
            format!("{} / {}", b.overlapping_terms, b.total_terms),
            false,
        )
        .compare(
            "PSR rate (original terms)",
            "—",
            pct(b.original_psr_rate),
            false,
        )
        .compare(
            "PSR rate (alternate terms)",
            "no significant difference",
            pct(b.alternate_psr_rate),
            false,
        )
        .compare(
            "campaign-set Jaccard",
            "\"same campaigns\"",
            format!("{:.2}", b.campaign_jaccard),
            false,
        )
}

fn labels_report(out: &StudyOutput) -> ExperimentReport {
    let l = interventions::labels(out);
    ExperimentReport::new("S4", "§5.2.2 — hacked-label intervention")
        .narrate(
            "Coverage is thin, the root-only policy forgoes further coverage, and \
             labels land weeks after a doorway starts ranking — the three findings \
             that make the label ineffective against these campaigns.",
        )
        .compare("label coverage of PSRs", "2.5%", pct(l.coverage), true)
        .compare(
            "labelable under same-domain policy",
            "68,193 → 102,104 (+49%)",
            format!(
                "{} → {} (+{:.0}%)",
                l.labeled_psrs,
                l.could_have_labeled,
                l.policy_gain * 100.0
            ),
            false,
        )
        .compare(
            "labeling delay (days)",
            "13–32",
            l.delay
                .map(|d| format!("{:.0}–{:.0} (n={})", d.mean_lo, d.mean_hi, d.n))
                .unwrap_or_else(|| "no labeled doorways observed".into()),
            true,
        )
}

fn seizures_report(out: &StudyOutput, id: &str) -> ExperimentReport {
    let s = interventions::seizures(out);
    let lag = interventions::seizure_observation_lag(out);
    let mut report = ExperimentReport::new(
        if id == "table3" { "T3" } else { "S5" },
        "Table 3 / §5.3 — seizure intervention",
    )
    .narrate(
        "Brand holders seize in bulk but cover a sliver of the store population, \
         stores live for weeks before seizure, and campaigns re-point doorways to \
         backups within days — the asymmetry that blunts the intervention.",
    )
    .compare(
        "seized share of observed stores",
        "3.9%",
        pct(s.seized_store_fraction),
        false,
    )
    .compare(
        "seizure observation lag vs truth",
        "n/a in paper (footnote 7)",
        lag.map(|l| format!("{l:.1} days"))
            .unwrap_or_else(|| "—".into()),
        false,
    );
    for f in &s.firms {
        report = report.compare(
            &format!("{}: lifetime / redirected / reaction", f.firm),
            match f.firm.as_str() {
                "Greer, Burns & Crain" => "58–68 d / 130 of 214 / 7 d",
                "SMGPA" => "48–56 d / 57 of 76 / 15 d",
                _ => "—",
            },
            format!(
                "{} / {} of {} / {}",
                f.store_lifetime
                    .map(|l| format!("{:.0}–{:.0} d", l.mean_lo, l.mean_hi))
                    .unwrap_or_else(|| "—".into()),
                f.redirected,
                f.observed_stores,
                f.mean_reaction_days
                    .map(|d| format!("{d:.0} d"))
                    .unwrap_or_else(|| "—".into()),
            ),
            true,
        );
    }
    report.artifact("Table 3 (measured)", s.to_markdown())
}

fn supplier_report(out: &StudyOutput) -> ExperimentReport {
    match sidechannel::supplier(out) {
        Some(s) => {
            let countries = s
                .top_countries
                .iter()
                .map(|(c, n)| format!("{c}: {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            ExperimentReport::new("S6", "§4.5 — supplier shipment ledger")
                .narrate(
                    "The portal's bulk lookup (20 order numbers per query) reconstructs \
                     the ledger; the delivery mix and destination skew carry over.",
                )
                .compare("records", "279K", s.records, true)
                .compare("delivered", "256K (91.7%)", s.delivered, true)
                .compare("seized at source", "4K", s.seized_source, true)
                .compare("seized at destination", "15K", s.seized_destination, true)
                .compare("returned", "1,319", s.returned, true)
                .compare(
                    "US+JP+AU+W.Europe share",
                    ">81%",
                    pct(s.top_market_share),
                    true,
                )
                .artifact("top destinations", countries)
        }
        None => ExperimentReport::new("S6", "§4.5 — supplier shipment ledger")
            .narrate("The supplier portal was not discovered in this run."),
    }
}

fn conversion_report(out: &StudyOutput) -> ExperimentReport {
    // Prefer the paper's coco store; otherwise the best-instrumented store.
    let analysis = sidechannel::conversion(out, "coco").or_else(|| {
        let best = out
            .awstats
            .iter()
            .max_by_key(|(_, reports)| reports.iter().map(|r| r.visits).sum::<u64>())
            .map(|(d, _)| d.clone())?;
        sidechannel::conversion(out, &best)
    });
    match analysis {
        Some(c) => ExperimentReport::new("S7", "§5.2.3 — conversion metrics")
            .narrate(format!(
                "AWStats-derived conversion arithmetic for {:?}.",
                c.domains
            ))
            .compare("visits observed", "93,509", c.visits, false)
            .compare(
                "referrer-set fraction",
                "60%",
                pct(c.referrer_fraction),
                true,
            )
            .compare(
                "pages per visit",
                "5.6",
                format!("{:.1}", c.pages_per_visit),
                true,
            )
            .compare(
                "conversion rate",
                "0.7% (a sale every 151 visits)",
                pct(c.conversion_rate),
                true,
            )
            .compare(
                "referrers seen as crawled doorways",
                "47.7%",
                pct(c.doorway_overlap),
                false,
            ),
        None => ExperimentReport::new("S7", "§5.2.3 — conversion metrics")
            .narrate("No store exposed AWStats in this run."),
    }
}

fn purchases_report(out: &StudyOutput) -> ExperimentReport {
    let p = sidechannel::purchases(out);
    let banks = p
        .banks
        .iter()
        .map(|(b, n)| format!("{b} ({n})"))
        .collect::<Vec<_>>()
        .join(", ");
    ExperimentReport::new("S8", "§4.3 — purchase programme")
        .narrate(
            "The order-sampling and real-purchase programme: breadth of coverage \
             and the payment-processing concentration.",
        )
        .compare("test orders created", "1,408", p.test_orders, false)
        .compare("stores sampled", "290", p.stores_sampled, true)
        .compare("campaigns touched", "24", p.campaigns_touched, false)
        .compare("verticals touched", "13", p.verticals_touched, false)
        .compare("purchases completed", "16", p.purchases, true)
        .compare("purchase campaigns", "12", p.purchase_campaigns, false)
        .compare("settling banks", "3 (2 CN, 1 KR)", p.banks.len(), true)
        .artifact("bank concentration", banks)
}

//! `repro serve` — a read-path loadgen over published engine epochs.
//!
//! The query plane's contract is that every reader between two commits
//! sees the same immutable [`ss_search::EngineEpoch`]. This module turns
//! that contract into a throughput measurement: worker threads hammer
//! `EngineEpoch::ranked` on whatever epoch is currently published while
//! the main thread keeps ticking the world a day at a time, republishing
//! after each commit — i.e. the serving pattern a real engine frontend
//! sees, reads racing writes without blocking on them.
//!
//! Workers never touch the world; they only clone the `Arc` out of the
//! publish slot. The mix of warm (repeat `(term, day)`) and cold (fresh
//! day offset) queries is deterministic per worker, so runs at the same
//! preset exercise the same key distribution even though wall-clock
//! throughput is, of course, machine-dependent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ss_eco::World;
use ss_search::EngineEpoch;
use ss_types::rng::mix;
use ss_types::{SimDate, TermId};

/// What one loadgen run measured. Serialized into `BENCH_paper.json` by
/// the paper-smoke example — extend, don't rename.
#[derive(Debug, serde::Serialize)]
pub struct ServeReport {
    /// Worker threads issuing queries.
    pub threads: usize,
    /// Days the world ticked (and epochs republished) during the run.
    pub days: u32,
    /// Queries the workers completed.
    pub queries: u64,
    /// Wall clock for the whole run, seconds.
    pub wall_s: f64,
    /// Sustained worker queries per second.
    pub qps: f64,
    /// Engine-side query count over the run (workers + tick planners).
    pub engine_queries: u64,
    /// Engine-side SERP cache hits over the run.
    pub engine_cache_hits: u64,
}

/// One worker's query loop: clone the published epoch, issue a batch,
/// re-check the slot. Returns its query count and an anti-DCE checksum.
fn worker_loop(
    slot: &Mutex<(u32, Arc<EngineEpoch>)>,
    stop: &AtomicBool,
    worker: u64,
    seed: u64,
    terms: usize,
    depth: usize,
) -> (u64, u64) {
    const BATCH: u64 = 64;
    let mut queries = 0u64;
    let mut checksum = 0u64;
    let mut i = 0u64;
    loop {
        let (day, epoch) = {
            let slot = slot.lock().expect("publish slot poisoned");
            (slot.0, Arc::clone(&slot.1))
        };
        for _ in 0..BATCH {
            let h = mix(seed, worker, i);
            i += 1;
            let term = TermId::from_index((h as usize) % terms);
            // Mostly the published day (warm cache, the common serving
            // case); every 8th query walks a nearby day cold.
            let qday = if h.is_multiple_of(8) {
                day + ((h >> 32) % 4) as u32
            } else {
                day
            };
            let serp = epoch.ranked(term, SimDate::from_day_index(qday), depth);
            for hit in serp.results() {
                checksum ^= u64::from(hit.rank) ^ (u64::from(hit.domain.0) << 32);
            }
            queries += 1;
        }
        // Checked after the batch, so every worker serves at least once
        // even if the tick loop outruns thread startup.
        if stop.load(Ordering::Relaxed) {
            break;
        }
    }
    (queries, checksum)
}

/// Runs the loadgen: `threads` workers query the published epoch while
/// the world ticks `days` more days, republishing after each commit. If
/// the ticks finish before `min_wall` has elapsed, the final epoch keeps
/// serving until it has — small presets tick faster than threads spawn,
/// and a qps number needs a measurable window.
///
/// The world is left `days` days further along; engine SERP counters are
/// drained into the report.
pub fn run_loadgen(
    world: &mut World,
    days: u32,
    threads: usize,
    min_wall: std::time::Duration,
) -> ServeReport {
    assert!(threads >= 1, "serve needs at least one worker");
    let terms = world.engine.term_count().max(1);
    let depth = world.cfg.scale.serp_depth;
    let seed = world.cfg.seed;
    // Reset counters so the report covers only this run.
    world.engine.take_serp_stats();

    let slot = Mutex::new((world.day.day_index(), world.engine.epoch()));
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let sink = AtomicU64::new(0);

    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads as u64 {
            let (slot, stop, total, sink) = (&slot, &stop, &total, &sink);
            s.spawn(move || {
                let (q, c) = worker_loop(slot, stop, w, seed, terms, depth);
                total.fetch_add(q, Ordering::Relaxed);
                sink.fetch_add(c, Ordering::Relaxed);
            });
        }
        for _ in 0..days {
            // `run_until` is inclusive: running until the current day
            // ticks exactly that one day and commits it.
            let today = world.day;
            world.run_until(today);
            let epoch = world.engine.epoch();
            *slot.lock().expect("publish slot poisoned") = (world.day.day_index(), epoch);
        }
        while t0.elapsed() < min_wall {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let wall_s = t0.elapsed().as_secs_f64();
    // The checksum keeps the optimizer honest; its value is meaningless.
    std::hint::black_box(sink.load(Ordering::Relaxed));

    let queries = total.load(Ordering::Relaxed);
    let (engine_queries, engine_cache_hits) = world.engine.take_serp_stats();
    ServeReport {
        threads,
        days,
        queries,
        wall_s,
        qps: queries as f64 / wall_s.max(1e-9),
        engine_queries,
        engine_cache_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_eco::ScenarioConfig;

    #[test]
    fn loadgen_reports_progress_on_a_tiny_world() {
        let mut w = World::build(ScenarioConfig::tiny(7)).unwrap();
        w.run_until(SimDate::from_day_index(ss_types::CRAWL_START_DAY));
        let day0 = w.day.day_index();
        let report = run_loadgen(&mut w, 3, 2, std::time::Duration::from_millis(50));
        assert_eq!(report.days, 3);
        assert_eq!(report.threads, 2);
        assert_eq!(w.day.day_index(), day0 + 3);
        assert!(report.queries > 0, "workers issued no queries");
        assert!(report.qps > 0.0);
        // Engine counters cover worker traffic plus tick planners, and
        // the repeated (term, day) keys must actually hit the cache.
        assert!(report.engine_queries >= report.queries);
        assert!(
            report.engine_cache_hits > 0,
            "no cache hits under repeat keys"
        );
    }
}

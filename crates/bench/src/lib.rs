//! # ss-bench
//!
//! Benchmarks and the `repro` experiment harness.
//!
//! * `benches/substrates.rs` — Criterion microbenchmarks of the substrate
//!   layers the pipeline leans on per-page (HTML parsing, JS rendering,
//!   SERP generation, feature extraction, classifier training);
//! * `benches/pipeline.rs` — Criterion benchmarks of the measurement
//!   pipeline stages (Dagger, VanGogh, a full crawl day, purchase-pair
//!   estimation);
//! * `src/bin/repro.rs` — the experiment runner: one subcommand per table
//!   and figure of the paper, plus `all` to regenerate EXPERIMENTS.md.
//!
//! This crate's library surface is the shared scenario builders the
//! benches and the binary use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use search_seizure::manifest::CalibrationTarget;
use search_seizure::{Study, StudyConfig, StudyOutput};
use ss_eco::{Scale, ScenarioConfig};

/// Named run presets for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny world, ~2-week crawl: seconds. Used by benches and smoke runs.
    Tiny,
    /// Small world, multi-month crawl: the default `repro` scale.
    Small,
    /// Paper-scale world and the full eight-month crawl window. Heavy —
    /// run in release.
    Paper,
    /// Stress scale, ~10× the paper's page volume. Proves the entity
    /// plane's headroom; calibration bands are warn-only (the paper's
    /// observables were measured at paper scale, not here).
    Mega,
}

impl Preset {
    /// Parses a preset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Preset::Tiny),
            "small" => Some(Preset::Small),
            "paper" => Some(Preset::Paper),
            "mega" => Some(Preset::Mega),
            _ => None,
        }
    }

    /// Builds the study configuration for this preset, including the
    /// calibration drift bands the run manifest evaluates.
    pub fn config(self, seed: u64) -> StudyConfig {
        let mut cfg = match self {
            Preset::Tiny => StudyConfig::fast_test(seed),
            Preset::Small => {
                let mut cfg = StudyConfig::new(ScenarioConfig::new(seed, Scale::small()));
                cfg.crawl_end = cfg.crawl_start + 110;
                cfg
            }
            Preset::Paper => StudyConfig::new(ScenarioConfig::paper(seed)),
            Preset::Mega => StudyConfig::new(ScenarioConfig::mega(seed)),
        };
        cfg.calibration = self.calibration_targets();
        cfg
    }

    /// Drift bands for the headline observables at this preset's scale.
    ///
    /// The `paper` column is the published value (Table 1 / Table 2 of
    /// the paper); the bands are about *this preset*: `ok` brackets the
    /// values healthy seeds produce, `fail` is the tripwire outside
    /// which the manifest marks the run `fail` and CI goes red. Between
    /// the two is `warn` — drifted, worth a look, not yet broken.
    pub fn calibration_targets(self) -> Vec<CalibrationTarget> {
        match self {
            // Tiny worlds are noisy; the bands only catch gross breakage
            // (e.g. the crawler or attribution silently going dark).
            Preset::Tiny => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (1_500.0, 9_000.0),
                    (500.0, 20_000.0),
                ),
                CalibrationTarget::new("top5_campaign_share", 0.75, (0.35, 1.0), (0.15, 1.0)),
                CalibrationTarget::new("mean_peak_days", 51.3, (2.0, 14.0), (1.0, 20.0)),
            ],
            Preset::Small => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (60_000.0, 160_000.0),
                    (30_000.0, 300_000.0),
                ),
                CalibrationTarget::new("top5_campaign_share", 0.75, (0.40, 0.90), (0.25, 1.0)),
                CalibrationTarget::new("mean_peak_days", 51.3, (35.0, 70.0), (20.0, 95.0)),
            ],
            Preset::Paper => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (1_500_000.0, 4_500_000.0),
                    (800_000.0, 8_000_000.0),
                ),
                CalibrationTarget::new("top5_campaign_share", 0.75, (0.40, 0.90), (0.25, 1.0)),
                CalibrationTarget::new("mean_peak_days", 51.3, (35.0, 70.0), (20.0, 95.0)),
            ],
            // Mega is a throughput stress preset: the `ok` bands still
            // describe healthy runs (so the manifest can warn on drift),
            // but the fail tripwires are unbounded — nobody calibrated
            // the paper's observables at 10× scale, so CI must not go
            // red over them.
            Preset::Mega => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (4_000_000.0, 40_000_000.0),
                    (f64::MIN, f64::MAX),
                ),
                CalibrationTarget::new(
                    "top5_campaign_share",
                    0.75,
                    (0.30, 0.95),
                    (f64::MIN, f64::MAX),
                ),
                CalibrationTarget::new("mean_peak_days", 51.3, (30.0, 75.0), (f64::MIN, f64::MAX)),
            ],
        }
    }

    /// Human description for report headers.
    pub fn describe(self, seed: u64) -> String {
        format!("{self:?} preset, seed {seed}")
    }
}

/// Runs a study for a preset (convenience for benches and the binary).
pub fn run_preset(preset: Preset, seed: u64) -> StudyOutput {
    Study::new(preset.config(seed))
        .run()
        .expect("study preset runs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_configure() {
        assert_eq!(Preset::parse("tiny"), Some(Preset::Tiny));
        assert_eq!(Preset::parse("paper"), Some(Preset::Paper));
        assert_eq!(Preset::parse("mega"), Some(Preset::Mega));
        assert_eq!(Preset::parse("huge"), None);
        let cfg = Preset::Small.config(1);
        assert!(cfg.crawl_end > cfg.crawl_start);
        // Every preset declares drift bands for the three headline
        // observables, and the bands nest (ok inside fail).
        for p in [Preset::Tiny, Preset::Small, Preset::Paper, Preset::Mega] {
            let targets = p.calibration_targets();
            assert_eq!(targets.len(), 3);
            for t in &targets {
                assert!(t.fail_lo <= t.ok_lo && t.ok_lo < t.ok_hi && t.ok_hi <= t.fail_hi);
            }
        }
    }
}

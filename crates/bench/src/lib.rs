//! # ss-bench
//!
//! Benchmarks and the `repro` experiment harness.
//!
//! * `benches/substrates.rs` — Criterion microbenchmarks of the substrate
//!   layers the pipeline leans on per-page (HTML parsing, JS rendering,
//!   SERP generation, feature extraction, classifier training);
//! * `benches/pipeline.rs` — Criterion benchmarks of the measurement
//!   pipeline stages (Dagger, VanGogh, a full crawl day, purchase-pair
//!   estimation);
//! * `src/bin/repro.rs` — the experiment runner: one subcommand per table
//!   and figure of the paper, plus `all` to regenerate EXPERIMENTS.md.
//!
//! This crate's library surface is the shared scenario builders the
//! benches and the binary use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use search_seizure::{Study, StudyConfig, StudyOutput};
use ss_eco::{Scale, ScenarioConfig};

/// Named run presets for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny world, ~2-week crawl: seconds. Used by benches and smoke runs.
    Tiny,
    /// Small world, multi-month crawl: the default `repro` scale.
    Small,
    /// Paper-scale world and the full eight-month crawl window. Heavy —
    /// run in release.
    Paper,
}

impl Preset {
    /// Parses a preset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Preset::Tiny),
            "small" => Some(Preset::Small),
            "paper" => Some(Preset::Paper),
            _ => None,
        }
    }

    /// Builds the study configuration for this preset.
    pub fn config(self, seed: u64) -> StudyConfig {
        match self {
            Preset::Tiny => StudyConfig::fast_test(seed),
            Preset::Small => {
                let mut cfg = StudyConfig::new(ScenarioConfig::new(seed, Scale::small()));
                cfg.crawl_end = cfg.crawl_start + 110;
                cfg
            }
            Preset::Paper => StudyConfig::new(ScenarioConfig::paper(seed)),
        }
    }

    /// Human description for report headers.
    pub fn describe(self, seed: u64) -> String {
        format!("{self:?} preset, seed {seed}")
    }
}

/// Runs a study for a preset (convenience for benches and the binary).
pub fn run_preset(preset: Preset, seed: u64) -> StudyOutput {
    Study::new(preset.config(seed))
        .run()
        .expect("study preset runs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_configure() {
        assert_eq!(Preset::parse("tiny"), Some(Preset::Tiny));
        assert_eq!(Preset::parse("paper"), Some(Preset::Paper));
        assert_eq!(Preset::parse("huge"), None);
        let cfg = Preset::Small.config(1);
        assert!(cfg.crawl_end > cfg.crawl_start);
    }
}

//! # ss-bench
//!
//! Benchmarks and the `repro` experiment harness.
//!
//! * `benches/substrates.rs` — Criterion microbenchmarks of the substrate
//!   layers the pipeline leans on per-page (HTML parsing, JS rendering,
//!   SERP generation, feature extraction, classifier training);
//! * `benches/pipeline.rs` — Criterion benchmarks of the measurement
//!   pipeline stages (Dagger, VanGogh, a full crawl day, purchase-pair
//!   estimation);
//! * `src/bin/repro.rs` — the experiment runner: one subcommand per table
//!   and figure of the paper, plus `all` to regenerate EXPERIMENTS.md.
//!
//! This crate's library surface is the shared scenario builders the
//! benches and the binary use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest_diff;
pub mod serve;
pub mod trajectory;

use search_seizure::manifest::CalibrationTarget;
use search_seizure::{Study, StudyConfig, StudyOutput};
use ss_eco::{Scale, ScenarioConfig};

/// Named run presets for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny world, ~2-week crawl: seconds. Used by benches and smoke runs.
    Tiny,
    /// Small world, multi-month crawl: the default `repro` scale.
    Small,
    /// Paper-scale world and the full eight-month crawl window. Heavy —
    /// run in release.
    Paper,
    /// Stress scale, ~10× the paper's page volume. Proves the entity
    /// plane's headroom; calibration bands are warn-only (the paper's
    /// observables were measured at paper scale, not here).
    Mega,
}

impl Preset {
    /// Parses a preset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Preset::Tiny),
            "small" => Some(Preset::Small),
            "paper" => Some(Preset::Paper),
            "mega" => Some(Preset::Mega),
            _ => None,
        }
    }

    /// Builds the study configuration for this preset, including the
    /// calibration drift bands the run manifest evaluates.
    pub fn config(self, seed: u64) -> StudyConfig {
        let mut cfg = match self {
            Preset::Tiny => StudyConfig::fast_test(seed),
            Preset::Small => {
                let mut cfg = StudyConfig::new(ScenarioConfig::new(seed, Scale::small()));
                cfg.crawl_end = cfg.crawl_start + 110;
                cfg
            }
            Preset::Paper => StudyConfig::new(ScenarioConfig::paper(seed)),
            Preset::Mega => StudyConfig::new(ScenarioConfig::mega(seed)),
        };
        cfg.calibration = self.calibration_targets();
        cfg
    }

    /// Drift bands for the headline observables at this preset's scale.
    ///
    /// The `paper` column is the published value (Table 1 / Table 2 of
    /// the paper); the bands are about *this preset*: `ok` brackets the
    /// values healthy seeds produce, `fail` is the tripwire outside
    /// which the manifest marks the run `fail` and CI goes red. Between
    /// the two is `warn` — drifted, worth a look, not yet broken.
    pub fn calibration_targets(self) -> Vec<CalibrationTarget> {
        match self {
            // Tiny worlds are noisy; the bands only catch gross breakage
            // (e.g. the crawler or attribution silently going dark).
            Preset::Tiny => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (1_500.0, 9_000.0),
                    (500.0, 20_000.0),
                ),
                CalibrationTarget::new("top5_campaign_share", 0.75, (0.35, 1.0), (0.15, 1.0)),
                CalibrationTarget::new("mean_peak_days", 51.3, (2.0, 14.0), (1.0, 20.0)),
            ],
            Preset::Small => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (60_000.0, 160_000.0),
                    (30_000.0, 300_000.0),
                ),
                CalibrationTarget::new("top5_campaign_share", 0.75, (0.40, 0.90), (0.25, 1.0)),
                CalibrationTarget::new("mean_peak_days", 51.3, (35.0, 70.0), (20.0, 95.0)),
            ],
            Preset::Paper => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (1_500_000.0, 4_500_000.0),
                    (800_000.0, 8_000_000.0),
                ),
                CalibrationTarget::new("top5_campaign_share", 0.75, (0.40, 0.90), (0.25, 1.0)),
                CalibrationTarget::new("mean_peak_days", 51.3, (35.0, 70.0), (20.0, 95.0)),
            ],
            // Mega is a throughput stress preset: the `ok` bands still
            // describe healthy runs (so the manifest can warn on drift),
            // but the fail tripwires are unbounded — nobody calibrated
            // the paper's observables at 10× scale, so CI must not go
            // red over them.
            Preset::Mega => vec![
                CalibrationTarget::new(
                    "total_psrs",
                    2_773_044.0,
                    (4_000_000.0, 40_000_000.0),
                    (f64::MIN, f64::MAX),
                ),
                CalibrationTarget::new(
                    "top5_campaign_share",
                    0.75,
                    (0.30, 0.95),
                    (f64::MIN, f64::MAX),
                ),
                CalibrationTarget::new("mean_peak_days", 51.3, (30.0, 75.0), (f64::MIN, f64::MAX)),
            ],
        }
    }

    /// Human description for report headers.
    pub fn describe(self, seed: u64) -> String {
        format!("{self:?} preset, seed {seed}")
    }
}

/// Runs a study for a preset (convenience for benches and the binary).
pub fn run_preset(preset: Preset, seed: u64) -> StudyOutput {
    Study::new(preset.config(seed))
        .run()
        .expect("study preset runs")
}

/// The VanGogh engine head-to-head: one pagegen corpus and one wall-clock
/// measurement shared by the `js/render_*` Criterion pair, the
/// `js_bench` CI example, and `repro jsengine`.
pub mod jsengine {
    use ss_web::http::UserAgent;
    use ss_web::js::render::render_with;
    use ss_web::js::{run_script_with, JsCache, JsEngine, PageEnv};
    use ss_web::pagegen::doorway;
    use ss_web::pagegen::storefront::{home_page, product_page, StoreCtx, StoreTemplate};
    use ss_web::Document;

    /// The pages a crawl day actually renders: every doorway flavour plus
    /// the scripted storefront pages.
    pub fn render_corpus() -> Vec<String> {
        let mut pages = Vec::new();
        let ctx = doorway::DoorwayCtx {
            domain: "hacked-blog.com",
            term: "cheap louis vuitton",
            brand: "Louis Vuitton",
            backlinks: &[],
            seed: 11,
        };
        pages.push(doorway::seo_page(&ctx));
        pages.push(doorway::seo_page_with_js_redirect(
            &ctx,
            "http://store.com/",
        ));
        for level in 0..=3u8 {
            pages.push(doorway::iframe_page(&ctx, "http://store.com/", level));
        }
        let t = StoreTemplate::for_campaign("BIGLOVE", 42);
        let sctx = StoreCtx {
            domain: "cocovipbags.com",
            store_name: "coco vip bags",
            template: &t,
            brands: &["Chanel", "Louis Vuitton"],
            locale: "us",
            merchant_id: "m-889231",
            seed: 7,
        };
        pages.push(home_page(&sctx));
        pages.push(product_page(&sctx, 2));
        pages
    }

    /// Renders every corpus page as a search-referred browser; returns the
    /// script-error count (a cheap anti-DCE sink).
    pub fn sweep(corpus: &[String], engine: JsEngine, cache: &JsCache) -> usize {
        corpus
            .iter()
            .map(|page| {
                render_with(
                    std::hint::black_box(page),
                    "http://d.com/",
                    UserAgent::Browser,
                    Some("http://google.com/search?q=x"),
                    engine,
                    cache,
                )
                .script_errors
            })
            .sum()
    }

    /// A page's pre-parsed execution context: its scripts plus the
    /// `PageEnv` a fresh per-visit environment is cloned from.
    pub struct ScriptCase {
        scripts: Vec<String>,
        env: PageEnv,
    }

    /// Pre-parses the corpus so [`script_sweep`] times only execution.
    pub fn script_cases(corpus: &[String]) -> Vec<ScriptCase> {
        corpus
            .iter()
            .map(|page| {
                let doc = Document::parse(page);
                let mut env =
                    PageEnv::browser("http://d.com/", Some("http://google.com/search?q=x"));
                env.title = doc.title().unwrap_or_default();
                env.dom_ids = doc
                    .elements()
                    .iter()
                    .filter_map(|e| e.attr("id").map(str::to_owned))
                    .collect();
                ScriptCase {
                    scripts: doc.scripts(),
                    env,
                }
            })
            .collect()
    }

    /// Executes every pre-parsed script (fresh env per page); returns the
    /// error count.
    pub fn script_sweep(cases: &[ScriptCase], engine: JsEngine, cache: &JsCache) -> usize {
        let mut errors = 0;
        for case in cases {
            let mut env = case.env.clone();
            for src in &case.scripts {
                if run_script_with(std::hint::black_box(src), &mut env, engine, cache).is_err() {
                    errors += 1;
                }
            }
        }
        errors
    }

    /// One full head-to-head measurement. Field names are the public
    /// contract of the `BENCH_js.json` artifact — extend, don't rename.
    #[derive(serde::Serialize)]
    pub struct HeadToHead {
        /// Pages in the corpus and sweeps over it per engine.
        pub corpus_pages: usize,
        /// Sweeps per engine.
        pub iters: usize,
        /// Full-render wall clock per engine, seconds. Includes the
        /// (engine-independent) HTML parse, so this understates the gap.
        pub treewalk_wall_s: f64,
        /// Full-render wall clock for the VM on a warmed chunk cache.
        pub vm_wall_s: f64,
        /// `treewalk_wall_s / vm_wall_s` over full renders.
        pub vm_speedup: f64,
        /// Script-execution-only wall clock (pages pre-parsed).
        pub treewalk_script_wall_s: f64,
        /// Script-execution-only wall clock for the VM.
        pub vm_script_wall_s: f64,
        /// The headline number CI gates on: ≥2× is the acceptance bar.
        pub vm_script_speedup: f64,
        /// VM chunk-cache stats after the run: distinct templates
        /// compiled and chunk-cache hits.
        pub js_compiles: u64,
        /// Chunk-cache hits.
        pub js_cache_hits: u64,
    }

    /// Runs the measurement: `iters` sweeps per engine over the corpus,
    /// full-render and script-only, VM on a warmed per-call cache.
    pub fn head_to_head(iters: usize) -> HeadToHead {
        let corpus = render_corpus();
        let tw_cache = JsCache::new();
        let vm_cache = JsCache::new();
        // Warm both paths once so first-iteration noise (VM template
        // compiles included) stays out of the timed loops.
        sweep(&corpus, JsEngine::TreeWalk, &tw_cache);
        sweep(&corpus, JsEngine::Vm, &vm_cache);

        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            sweep(&corpus, JsEngine::TreeWalk, &tw_cache);
        }
        let treewalk_wall_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        for _ in 0..iters {
            sweep(&corpus, JsEngine::Vm, &vm_cache);
        }
        let vm_wall_s = t1.elapsed().as_secs_f64();

        let cases = script_cases(&corpus);
        let t2 = std::time::Instant::now();
        for _ in 0..iters {
            script_sweep(&cases, JsEngine::TreeWalk, &tw_cache);
        }
        let treewalk_script_wall_s = t2.elapsed().as_secs_f64();
        let t3 = std::time::Instant::now();
        for _ in 0..iters {
            script_sweep(&cases, JsEngine::Vm, &vm_cache);
        }
        let vm_script_wall_s = t3.elapsed().as_secs_f64();

        let (js_compiles, js_cache_hits) = vm_cache.stats();
        assert_eq!(
            tw_cache.stats(),
            (0, 0),
            "the treewalker must never touch the compile cache"
        );
        HeadToHead {
            corpus_pages: corpus.len(),
            iters,
            treewalk_wall_s,
            vm_wall_s,
            vm_speedup: treewalk_wall_s / vm_wall_s,
            treewalk_script_wall_s,
            vm_script_wall_s,
            vm_script_speedup: treewalk_script_wall_s / vm_script_wall_s,
            js_compiles,
            js_cache_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_configure() {
        assert_eq!(Preset::parse("tiny"), Some(Preset::Tiny));
        assert_eq!(Preset::parse("paper"), Some(Preset::Paper));
        assert_eq!(Preset::parse("mega"), Some(Preset::Mega));
        assert_eq!(Preset::parse("huge"), None);
        let cfg = Preset::Small.config(1);
        assert!(cfg.crawl_end > cfg.crawl_start);
        // Every preset declares drift bands for the three headline
        // observables, and the bands nest (ok inside fail).
        for p in [Preset::Tiny, Preset::Small, Preset::Paper, Preset::Mega] {
            let targets = p.calibration_targets();
            assert_eq!(targets.len(), 3);
            for t in &targets {
                assert!(t.fail_lo <= t.ok_lo && t.ok_lo < t.ok_hi && t.ok_hi <= t.fail_hi);
            }
        }
    }
}

//! Smoke test for the paper-scale world: builds the full 16-vertical ×
//! 100-term × 52-campaign world and runs a few day ticks, printing sizes
//! and timings. Use this to gauge whether a full `repro all --preset
//! paper` run is worth the wall-clock on your machine.
//!
//! ```text
//! cargo run --release -p ss-bench --example paper_smoke
//! ```

use ss_eco::{ScenarioConfig, World};
use ss_types::SimDate;

fn main() {
    let t0 = std::time::Instant::now();
    let mut w = World::build(ScenarioConfig::paper(1)).expect("paper world builds");
    println!(
        "paper world built in {:.1?}: {} domains, {} indexed docs, {} stores, {} campaigns",
        t0.elapsed(),
        w.domains.len(),
        w.engine.doc_count(),
        w.stores.len(),
        w.campaigns.len()
    );
    let t1 = std::time::Instant::now();
    w.run_until(SimDate::from_day_index(3));
    println!(
        "4 day ticks in {:.1?} (the crawl window spans 245 days)",
        t1.elapsed()
    );
}

//! Paper/mega-scale profiling harness.
//!
//! Builds the world for a preset, runs the study (optionally on a
//! shortened crawl horizon), and records a machine-readable profile —
//! total wall clock, the world-build split, the pipeline's per-stage
//! timing table, headline observables, and the calibration grade. CI's
//! non-blocking paper-smoke job uploads the result as `BENCH_paper.json`.
//!
//! ```text
//! # full paper-scale profile into BENCH_paper.json
//! cargo run --release -p ss-bench --example paper_smoke -- \
//!     --preset paper --out BENCH_paper.json
//!
//! # shortened-horizon CI smoke: build + 20 crawl days
//! cargo run --release -p ss-bench --example paper_smoke -- \
//!     --preset paper --days 20 --out BENCH_paper.json
//!
//! # stress scale
//! cargo run --release -p ss-bench --example paper_smoke -- --preset mega
//! ```
//!
//! `--checkpoint` additionally exercises the state plane: the run drops
//! a mid-window checkpoint, and the profile records its size on disk
//! plus save/load wall clock.

use search_seizure::manifest::{CalibrationEntry, Headline, StageTiming};
use search_seizure::{state, RunOptions, Study};
use ss_bench::Preset;
use ss_eco::World;

/// What `--out` records — one entry in the `BENCH_paper.json` run log.
/// Field names are the public contract of the artifact (and of
/// `repro bench-report`'s flattened metric names) — extend, don't rename.
#[derive(serde::Serialize)]
struct BenchProfile {
    preset: String,
    seed: u64,
    threads: usize,
    /// `git rev-parse --short HEAD` at run time, or "unknown" outside a
    /// work tree — lets a trajectory log entry be traced back to a commit.
    git_rev: String,
    /// Crawl window actually executed `(first, last)`, inclusive days.
    crawl_window: (u32, u32),
    /// Wall clock of a standalone world build (generation only).
    build_wall_s: f64,
    /// World size after build: domains, indexed docs, stores, campaigns.
    world: (usize, usize, usize, usize),
    /// Wall clock of the full study run (build + crawl + analysis).
    total_wall_s: f64,
    /// The pipeline's per-stage timing table.
    stage_timings: Vec<StageTiming>,
    headline: Headline,
    calibration: Vec<CalibrationEntry>,
    /// VanGogh bytecode-cache effect at scale: distinct page templates
    /// compiled vs. chunk-cache hits across the whole crawl window.
    js_compiles: u64,
    js_cache_hits: u64,
    /// Query plane at scale: sustained worker queries/sec against the
    /// published epoch while the world ticks (the `repro serve` loadgen
    /// on the standalone build, before the study run).
    serve_qps: f64,
    /// Engine SERP queries and cache hits across the study run itself.
    serp_queries: u64,
    serp_cache_hits: u64,
    /// State plane at scale (present with `--checkpoint`): bytes of the
    /// mid-window checkpoint frame, and save/load wall clock.
    checkpoint_bytes: Option<u64>,
    checkpoint_save_s: Option<f64>,
    checkpoint_load_s: Option<f64>,
    /// Deterministic cost-profile rows (allocs/bytes/work units per
    /// phase; no wall clock) — what `repro bench-report` gates on.
    costs: serde::Value,
}

/// Short git revision for trajectory entries; tolerant of running
/// outside a repository (release tarballs, sandboxes).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let mut preset = Preset::Paper;
    let mut seed = 1u64;
    let mut days: Option<u32> = None;
    let mut threads = 1usize;
    let mut out: Option<String> = None;
    let mut checkpoint = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                let v = args.next().expect("--preset needs a value");
                preset = Preset::parse(&v).unwrap_or_else(|| panic!("unknown preset {v:?}"));
            }
            "--seed" => seed = args.next().expect("--seed needs a value").parse().unwrap(),
            "--days" => days = Some(args.next().expect("--days needs a value").parse().unwrap()),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .unwrap();
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--checkpoint" => checkpoint = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let mut cfg = preset.config(seed);
    if let Some(d) = days {
        cfg.crawl_end = cfg.crawl_start + d;
        // Don't simulate months past a shortened crawl.
        cfg.scenario.scale.end_day = cfg
            .scenario
            .scale
            .end_day
            .min(cfg.crawl_end.day_index() + 10);
    }
    cfg.set_threads(threads);
    cfg.manifest_path = None;

    // Build once standalone so world generation gets its own wall-clock
    // split (the study rebuilds internally; generation is deterministic).
    let t0 = std::time::Instant::now();
    let mut w = World::build(cfg.scenario.clone()).expect("world builds");
    let build_wall_s = t0.elapsed().as_secs_f64();
    let world = (
        w.domains.len(),
        w.engine.doc_count(),
        w.stores.len(),
        w.campaigns.len(),
    );
    eprintln!(
        "[paper_smoke] {} world built in {build_wall_s:.1}s: {} domains, {} docs, {} stores, {} campaigns",
        preset.describe(seed),
        world.0,
        world.1,
        world.2,
        world.3
    );
    // Query-plane throughput on the fresh build: loadgen workers hammer
    // the published epoch while the world ticks a few days. (The SERP mix
    // at day 0 differs from mid-window, but walk cost per query doesn't.)
    let serve =
        ss_bench::serve::run_loadgen(&mut w, 5, threads.max(2), std::time::Duration::from_secs(2));
    eprintln!(
        "[paper_smoke] serve: {:.0} qps sustained over {} worker(s), {} epoch republishes",
        serve.qps, serve.threads, serve.days
    );
    drop(w);

    // With --checkpoint, drop one resumable frame mid-window so the
    // profile captures the state plane's cost at this scale.
    let ckpt_dir = std::env::temp_dir().join(format!("ss-smoke-ckpt-{}", std::process::id()));
    let window_days = cfg.crawl_end.day_index() - cfg.crawl_start.day_index();
    let opts = if checkpoint {
        RunOptions {
            resume_from: None,
            checkpoint_every: Some(window_days.max(2) / 2),
            checkpoint_dir: Some(ckpt_dir.to_string_lossy().into_owned()),
        }
    } else {
        RunOptions::default()
    };

    let t1 = std::time::Instant::now();
    let output = Study::new(cfg).run_with(opts).expect("study runs");
    let total_wall_s = t1.elapsed().as_secs_f64();

    let (mut checkpoint_bytes, mut checkpoint_load_s) = (None, None);
    let checkpoint_save_s = output
        .metrics
        .span_stats("study.checkpoint")
        .map(|s| s.total_ns as f64 / 1e9);
    if checkpoint {
        let first = std::fs::read_dir(&ckpt_dir)
            .expect("checkpoint dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .min()
            .expect("a checkpoint was written");
        checkpoint_bytes = Some(std::fs::metadata(&first).expect("checkpoint stat").len());
        let t = std::time::Instant::now();
        state::load_checkpoint(&first).expect("checkpoint loads");
        checkpoint_load_s = Some(t.elapsed().as_secs_f64());
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    let profile = BenchProfile {
        preset: format!("{preset:?}").to_ascii_lowercase(),
        seed,
        threads,
        git_rev: git_rev(),
        crawl_window: (output.window.0.day_index(), output.window.1.day_index()),
        build_wall_s,
        world,
        total_wall_s,
        stage_timings: output.manifest.stage_timings.clone(),
        headline: output.manifest.headline.clone(),
        calibration: output.manifest.calibration.clone(),
        js_compiles: output.metrics.counter_total("simweb.js_compile"),
        js_cache_hits: output.metrics.counter_total("simweb.js_cache_hit"),
        serve_qps: serve.qps,
        serp_queries: output.metrics.counter_total("engine.serp_queries"),
        serp_cache_hits: output.metrics.counter_total("engine.serp_cache_hits"),
        checkpoint_bytes,
        checkpoint_save_s,
        checkpoint_load_s,
        costs: output.metrics.costs_value(),
    };
    if let (Some(b), Some(l)) = (profile.checkpoint_bytes, profile.checkpoint_load_s) {
        eprintln!(
            "[paper_smoke] checkpoint: {:.1} MiB, save {:.2}s, load {l:.2}s",
            b as f64 / (1024.0 * 1024.0),
            profile.checkpoint_save_s.unwrap_or(0.0),
        );
    }

    eprintln!(
        "[paper_smoke] study ran in {total_wall_s:.1}s: {} PSRs, {} seizure notices, \
         js cache {} compiles / {} hits, serp {} queries / {} cache hits, calibration [{}]",
        profile.headline.psrs,
        profile.headline.seizure_notices,
        profile.js_compiles,
        profile.js_cache_hits,
        profile.serp_queries,
        profile.serp_cache_hits,
        profile
            .calibration
            .iter()
            .map(|c| format!("{}={}", c.observable, c.status))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let rendered = serde_json::to_string_pretty(&profile).expect("profile serializes");
    match out {
        Some(path) => {
            // The artifact is an append-only run log: keep every prior
            // entry (migrating a pre-envelope single-object file on the
            // way) and push this run onto `runs`.
            let run = ss_bench::manifest_diff::parse_json(&rendered).expect("profile re-parses");
            let mut log = match std::fs::read_to_string(&path) {
                Ok(existing) => ss_bench::trajectory::normalize_log(
                    ss_bench::manifest_diff::parse_json(&existing)
                        .unwrap_or_else(|e| panic!("existing {path} is not JSON: {e}")),
                ),
                Err(_) => ss_bench::trajectory::empty_log(),
            };
            ss_bench::trajectory::append_run(&mut log, run);
            let runs = ss_bench::trajectory::run_count(&log);
            std::fs::write(
                &path,
                serde_json::to_string_pretty(&log).expect("log serializes"),
            )
            .expect("profile written");
            eprintln!("[paper_smoke] wrote {path} ({runs} run(s) in log)");
        }
        None => println!("{rendered}"),
    }
}

//! Paper/mega-scale profiling harness.
//!
//! Builds the world for a preset, runs the study (optionally on a
//! shortened crawl horizon), and records a machine-readable profile —
//! total wall clock, the world-build split, the pipeline's per-stage
//! timing table, headline observables, and the calibration grade. CI's
//! non-blocking paper-smoke job uploads the result as `BENCH_paper.json`.
//!
//! ```text
//! # full paper-scale profile into BENCH_paper.json
//! cargo run --release -p ss-bench --example paper_smoke -- \
//!     --preset paper --out BENCH_paper.json
//!
//! # shortened-horizon CI smoke: build + 20 crawl days
//! cargo run --release -p ss-bench --example paper_smoke -- \
//!     --preset paper --days 20 --out BENCH_paper.json
//!
//! # stress scale
//! cargo run --release -p ss-bench --example paper_smoke -- --preset mega
//! ```

use search_seizure::manifest::{CalibrationEntry, Headline, StageTiming};
use search_seizure::Study;
use ss_bench::Preset;
use ss_eco::World;

/// What `--out` records. Field names are the public contract of the
/// `BENCH_paper.json` artifact — extend, don't rename.
#[derive(serde::Serialize)]
struct BenchProfile {
    preset: String,
    seed: u64,
    threads: usize,
    /// Crawl window actually executed `(first, last)`, inclusive days.
    crawl_window: (u32, u32),
    /// Wall clock of a standalone world build (generation only).
    build_wall_s: f64,
    /// World size after build: domains, indexed docs, stores, campaigns.
    world: (usize, usize, usize, usize),
    /// Wall clock of the full study run (build + crawl + analysis).
    total_wall_s: f64,
    /// The pipeline's per-stage timing table.
    stage_timings: Vec<StageTiming>,
    headline: Headline,
    calibration: Vec<CalibrationEntry>,
    /// VanGogh bytecode-cache effect at scale: distinct page templates
    /// compiled vs. chunk-cache hits across the whole crawl window.
    js_compiles: u64,
    js_cache_hits: u64,
}

fn main() {
    let mut preset = Preset::Paper;
    let mut seed = 1u64;
    let mut days: Option<u32> = None;
    let mut threads = 1usize;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                let v = args.next().expect("--preset needs a value");
                preset = Preset::parse(&v).unwrap_or_else(|| panic!("unknown preset {v:?}"));
            }
            "--seed" => seed = args.next().expect("--seed needs a value").parse().unwrap(),
            "--days" => days = Some(args.next().expect("--days needs a value").parse().unwrap()),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .unwrap();
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let mut cfg = preset.config(seed);
    if let Some(d) = days {
        cfg.crawl_end = cfg.crawl_start + d;
        // Don't simulate months past a shortened crawl.
        cfg.scenario.scale.end_day = cfg
            .scenario
            .scale
            .end_day
            .min(cfg.crawl_end.day_index() + 10);
    }
    cfg.set_threads(threads);
    cfg.manifest_path = None;

    // Build once standalone so world generation gets its own wall-clock
    // split (the study rebuilds internally; generation is deterministic).
    let t0 = std::time::Instant::now();
    let w = World::build(cfg.scenario.clone()).expect("world builds");
    let build_wall_s = t0.elapsed().as_secs_f64();
    let world = (
        w.domains.len(),
        w.engine.doc_count(),
        w.stores.len(),
        w.campaigns.len(),
    );
    eprintln!(
        "[paper_smoke] {} world built in {build_wall_s:.1}s: {} domains, {} docs, {} stores, {} campaigns",
        preset.describe(seed),
        world.0,
        world.1,
        world.2,
        world.3
    );
    drop(w);

    let t1 = std::time::Instant::now();
    let output = Study::new(cfg).run().expect("study runs");
    let total_wall_s = t1.elapsed().as_secs_f64();

    let profile = BenchProfile {
        preset: format!("{preset:?}").to_ascii_lowercase(),
        seed,
        threads,
        crawl_window: (output.window.0.day_index(), output.window.1.day_index()),
        build_wall_s,
        world,
        total_wall_s,
        stage_timings: output.manifest.stage_timings.clone(),
        headline: output.manifest.headline.clone(),
        calibration: output.manifest.calibration.clone(),
        js_compiles: output.metrics.counter_total("simweb.js_compile"),
        js_cache_hits: output.metrics.counter_total("simweb.js_cache_hit"),
    };

    eprintln!(
        "[paper_smoke] study ran in {total_wall_s:.1}s: {} PSRs, {} seizure notices, \
         js cache {} compiles / {} hits, calibration [{}]",
        profile.headline.psrs,
        profile.headline.seizure_notices,
        profile.js_compiles,
        profile.js_cache_hits,
        profile
            .calibration
            .iter()
            .map(|c| format!("{}={}", c.observable, c.status))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let rendered = serde_json::to_string_pretty(&profile).expect("profile serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, rendered).expect("profile written");
            eprintln!("[paper_smoke] wrote {path}");
        }
        None => println!("{rendered}"),
    }
}

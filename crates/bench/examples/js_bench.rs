//! JS-engine head-to-head profile for CI.
//!
//! Renders the pagegen corpus (every doorway flavour plus the scripted
//! storefront pages) many times through both engines — the tree-walking
//! reference and the bytecode VM on a warmed chunk cache — and writes a
//! machine-readable comparison. CI uploads the result as `BENCH_js.json`
//! and gates on the VM being at least 2× faster on script execution (the
//! tentpole's acceptance bar), so a compiler regression fails loudly
//! instead of rotting silently.
//!
//! ```text
//! cargo run --release -p ss-bench --example js_bench -- \
//!     --iters 300 --out BENCH_js.json
//! ```

fn main() {
    let mut iters = 300usize;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = args.next().expect("--iters needs a value").parse().unwrap(),
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let profile = ss_bench::jsengine::head_to_head(iters);
    eprintln!(
        "[js_bench] {} pages × {} iters: full render {:.3}s vs {:.3}s ({:.2}×), \
         script-only {:.3}s vs {:.3}s ({:.2}×), {} compiles, {} cache hits",
        profile.corpus_pages,
        profile.iters,
        profile.treewalk_wall_s,
        profile.vm_wall_s,
        profile.vm_speedup,
        profile.treewalk_script_wall_s,
        profile.vm_script_wall_s,
        profile.vm_script_speedup,
        profile.js_compiles,
        profile.js_cache_hits
    );
    assert!(
        profile.vm_script_speedup >= 2.0,
        "bytecode VM must stay ≥2× faster than the treewalker on the pagegen \
         corpus scripts, measured {:.2}×",
        profile.vm_script_speedup
    );

    let rendered = serde_json::to_string_pretty(&profile).expect("profile serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, rendered).expect("profile written");
            eprintln!("[js_bench] wrote {path}");
        }
        None => println!("{rendered}"),
    }
}
